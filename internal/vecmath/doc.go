// Package vecmath provides the small float32 vector kernels used by the
// embedder and the HNSW index — dot product, norms, cosine similarity,
// squared Euclidean distance — plus the int8 dot product behind the
// quantized speed tier, each in single-pair and batched-arena form.
//
// # Dispatch tiers
//
// The float32 kernels (Dot, SquaredL2, their batched forms, and through
// Dot also Norm and CosineWithNorms) run on one of three dispatch tiers,
// selected once at init through an atomic function-pointer seam:
//
//   - "avx2" on amd64, when CPUID reports AVX2 and the OS has enabled YMM
//     state (OSXSAVE + XCR0); unlike the int8 kernel's SSE2, AVX2 is not
//     in the amd64 baseline and must be feature-detected.
//   - "neon" on arm64, unconditionally — Advanced SIMD is part of the
//     ARMv8-A baseline.
//   - "scalar" everywhere else, under the purego build tag, when the
//     PNEUMA_FORCE_SCALAR environment variable is set, or after
//     ForceScalar(true).
//
// The int8 kernels (DotInt8, DotInt8Batch) have their own ladder,
// detected independently and swapped through the same seam: "avx2"
// (CPUID-gated, 32 lanes per iteration) above the ungated "sse2" baseline
// on amd64, "scalar" elsewhere. Tier/Int8Tier report the pair serving
// calls; ForceTiers pins any listed pairing for benchmarks and
// differential tests.
//
// # Batched arena kernels
//
// DotBatch, SquaredL2Batch and DotInt8Batch score one query against many
// candidates resident in a contiguous arena: candidate j is the window
// arena[idxs[j]*stride : idxs[j]*stride+len(q)], its score lands in
// out[j], and stride (in elements, ≥ len(q)) is the arena's row pitch.
// This is exactly the struct-of-arrays layout the HNSW index stores, so
// traversal hands an adjacency list to the kernel with no copying. The
// SIMD batch kernels run the candidate loop inside the assembly — the
// dispatch load and call overhead are paid once per batch, the query
// stays hot in registers, and the next candidate's leading cache lines
// are software-prefetched while the current one is scored. Batched
// results are bit-identical to a loop of single-kernel calls at every
// length, on every tier: the per-candidate math is the same canonical
// scheme, only the loop around it moves. Malformed batches (short out,
// stride below the query length, an index whose window leaves the arena)
// panic up front, which is what lets the assembly run unchecked loads.
//
// # The determinism contract
//
// Every tier computes the same canonical lane-accumulation scheme: blocks
// of eight elements feed eight independent accumulator lanes (element i
// goes to lane i mod 8), the lanes reduce in the fixed order
// ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)), and the sub-block tail is added
// sequentially onto the block sum. No implementation uses FMA: the
// assembly kernels multiply and add in separate instructions, and the
// pure-Go reference wraps each product in an explicit float32 conversion,
// which the language spec defines as a rounding point the compiler may
// not fuse through. The result: Dot, SquaredL2, Norm and CosineWithNorms
// are bit-identical across scalar, AVX2 (one 8-lane register) and NEON
// (two 4-lane registers) at every input length — so search results,
// stored norms and snapshots are portable across machines and across
// ForceScalar toggles.
//
// The canonical result differs in the last ULP from a naive sequential
// sum, which is why every caller in the repo goes through this package
// rather than hand-rolling a loop.
package vecmath
