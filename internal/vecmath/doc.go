// Package vecmath provides the small float32 vector kernels used by the
// embedder and the HNSW index — dot product, norms, cosine similarity,
// squared Euclidean distance — plus the int8 dot product behind the
// quantized speed tier.
//
// # Dispatch tiers
//
// The float32 kernels (Dot, SquaredL2, and through them Norm and
// CosineWithNorms) run on one of three dispatch tiers, selected once at
// init through an atomic function-pointer seam:
//
//   - "avx2" on amd64, when CPUID reports AVX2 and the OS has enabled YMM
//     state (OSXSAVE + XCR0); unlike the int8 kernel's SSE2, AVX2 is not
//     in the amd64 baseline and must be feature-detected.
//   - "neon" on arm64, unconditionally — Advanced SIMD is part of the
//     ARMv8-A baseline.
//   - "scalar" everywhere else, under the purego build tag, when the
//     PNEUMA_FORCE_SCALAR environment variable is set, or after
//     ForceScalar(true).
//
// # The determinism contract
//
// Every tier computes the same canonical lane-accumulation scheme: blocks
// of eight elements feed eight independent accumulator lanes (element i
// goes to lane i mod 8), the lanes reduce in the fixed order
// ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)), and the sub-block tail is added
// sequentially onto the block sum. No implementation uses FMA: the
// assembly kernels multiply and add in separate instructions, and the
// pure-Go reference wraps each product in an explicit float32 conversion,
// which the language spec defines as a rounding point the compiler may
// not fuse through. The result: Dot, SquaredL2, Norm and CosineWithNorms
// are bit-identical across scalar, AVX2 (one 8-lane register) and NEON
// (two 4-lane registers) at every input length — so search results,
// stored norms and snapshots are portable across machines and across
// ForceScalar toggles.
//
// The canonical result differs in the last ULP from a naive sequential
// sum, which is why every caller in the repo goes through this package
// rather than hand-rolling a loop.
package vecmath
