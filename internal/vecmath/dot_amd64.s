//go:build amd64 && !purego

#include "textflag.h"

// func dotInt8SSE2(a, b *int8, n int) int32
//
// 16 int8 products per iteration: each 16-byte vector is widened to two
// 8×int16 halves by interleaving a register with itself (PUNPCKLBW /
// PUNPCKHBW leave each byte in the high half of its word) and shifting
// arithmetically right by 8, then PMADDWD multiplies int16 pairs and adds
// adjacent products into 4×int32 lanes — exact, since |product| ≤ 127² and
// a pair sum fits int32 (PMADDWL in Go assembler spelling). Lane sums
// accumulate in X7 and are reduced
// horizontally at the end; the tail runs scalar.
TEXT ·dotInt8SSE2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	PXOR X7, X7

loop16:
	CMPQ CX, $16
	JLT  tailsetup
	MOVOU (SI), X0
	MOVOU (DI), X2
	MOVOU X0, X1
	MOVOU X2, X3
	PUNPCKLBW X0, X0
	PSRAW $8, X0
	PUNPCKHBW X1, X1
	PSRAW $8, X1
	PUNPCKLBW X2, X2
	PSRAW $8, X2
	PUNPCKHBW X3, X3
	PSRAW $8, X3
	PMADDWL X2, X0
	PMADDWL X3, X1
	PADDD X0, X7
	PADDD X1, X7
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  loop16

tailsetup:
	// Horizontal reduction of the 4 int32 lanes into AX.
	PSHUFD $0x4E, X7, X0
	PADDD  X0, X7
	PSHUFD $0x01, X7, X0
	PADDD  X0, X7
	MOVQ   X7, AX

tailloop:
	TESTQ CX, CX
	JEQ   done
	MOVBLSX (SI), R8
	MOVBLSX (DI), R9
	IMULL R9, R8
	ADDL  R8, AX
	INCQ  SI
	INCQ  DI
	DECQ  CX
	JMP   tailloop

done:
	MOVL AX, ret+24(FP)
	RET

// func dotInt8AVX2(a, b *int8, n int) int32
//
// The CPUID-gated tier above SSE2: 32 int8 products per iteration. Each
// 16-byte half is sign-extended straight to 16×int16 in a YMM register
// (VPMOVSXBW — no unpack/shift dance), VPMADDWD multiplies int16 pairs
// and adds adjacent products into 8×int32 lanes, and the lane sums
// accumulate in Y7. All integer math is exact (|product| ≤ 127², pair
// sums fit int32), so the result is bit-identical to the SSE2 and scalar
// kernels. The reduction folds the high 128 bits onto the low half and
// then runs the same PSHUFD ladder as the SSE2 kernel; VMOVD keeps the
// extraction VEX-encoded so no SSE instruction runs with dirty YMM upper
// state. The sub-32 tail runs scalar.
TEXT ·dotInt8AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR Y7, Y7, Y7

loop32:
	CMPQ CX, $32
	JLT  reduce
	VPMOVSXBW (SI), Y0
	VPMOVSXBW (DI), Y2
	VPMADDWD Y2, Y0, Y0
	VPADDD Y0, Y7, Y7
	VPMOVSXBW 16(SI), Y1
	VPMOVSXBW 16(DI), Y3
	VPMADDWD Y3, Y1, Y1
	VPADDD Y1, Y7, Y7
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JMP  loop32

reduce:
	VEXTRACTI128 $1, Y7, X6
	VPADDD X6, X7, X7
	VPSHUFD $0x4E, X7, X6
	VPADDD X6, X7, X7
	VPSHUFD $0x01, X7, X6
	VPADDD X6, X7, X7
	VMOVD X7, AX

tailloop:
	TESTQ CX, CX
	JEQ   done
	MOVBLSX (SI), R8
	MOVBLSX (DI), R9
	IMULL R9, R8
	ADDL  R8, AX
	INCQ  SI
	INCQ  DI
	DECQ  CX
	JMP   tailloop

done:
	VZEROUPPER
	MOVL AX, ret+24(FP)
	RET

// func dotInt8BatchAVX2(q, arena *int8, stride int, idxs *int32, n, dim int, out *int32)
//
// Batched form of dotInt8AVX2: candidate j lives at arena + idxs[j]*stride
// (stride already in bytes — int8 elements are one byte) and its score
// lands in out[j]. Per-candidate math is identical to the single kernel;
// the batch keeps the query pointer hot and prefetches the next
// candidate's first two cache lines while the current one is scored.
// Requires n > 0 and dim > 0; indices pre-validated by the Go wrapper.
TEXT ·dotInt8BatchAVX2(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), SI
	MOVQ arena+8(FP), DX
	MOVQ stride+16(FP), R8
	MOVQ idxs+24(FP), R9
	MOVQ n+32(FP), R10
	MOVQ dim+40(FP), R11
	MOVQ out+48(FP), R12

outer:
	MOVLQSX (R9), AX
	IMULQ R8, AX
	LEAQ (DX)(AX*1), DI
	CMPQ R10, $2
	JLT  inner
	MOVLQSX 4(R9), BX
	IMULQ R8, BX
	PREFETCHT0 (DX)(BX*1)
	PREFETCHT0 64(DX)(BX*1)

inner:
	MOVQ SI, R13
	MOVQ R11, CX
	VPXOR Y7, Y7, Y7

loop32:
	CMPQ CX, $32
	JLT  reduce
	VPMOVSXBW (R13), Y0
	VPMOVSXBW (DI), Y2
	VPMADDWD Y2, Y0, Y0
	VPADDD Y0, Y7, Y7
	VPMOVSXBW 16(R13), Y1
	VPMOVSXBW 16(DI), Y3
	VPMADDWD Y3, Y1, Y1
	VPADDD Y1, Y7, Y7
	ADDQ $32, R13
	ADDQ $32, DI
	SUBQ $32, CX
	JMP  loop32

reduce:
	VEXTRACTI128 $1, Y7, X6
	VPADDD X6, X7, X7
	VPSHUFD $0x4E, X7, X6
	VPADDD X6, X7, X7
	VPSHUFD $0x01, X7, X6
	VPADDD X6, X7, X7
	VMOVD X7, AX

tailloop:
	TESTQ CX, CX
	JEQ   store
	MOVBLSX (R13), R14
	MOVBLSX (DI), R15
	IMULL R15, R14
	ADDL  R14, AX
	INCQ  R13
	INCQ  DI
	DECQ  CX
	JMP   tailloop

store:
	MOVL AX, (R12)
	ADDQ $4, R12
	ADDQ $4, R9
	DECQ R10
	JNZ  outer
	VZEROUPPER
	RET
