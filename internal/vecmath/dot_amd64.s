//go:build amd64 && !purego

#include "textflag.h"

// func dotInt8SSE2(a, b *int8, n int) int32
//
// 16 int8 products per iteration: each 16-byte vector is widened to two
// 8×int16 halves by interleaving a register with itself (PUNPCKLBW /
// PUNPCKHBW leave each byte in the high half of its word) and shifting
// arithmetically right by 8, then PMADDWD multiplies int16 pairs and adds
// adjacent products into 4×int32 lanes — exact, since |product| ≤ 127² and
// a pair sum fits int32 (PMADDWL in Go assembler spelling). Lane sums
// accumulate in X7 and are reduced
// horizontally at the end; the tail runs scalar.
TEXT ·dotInt8SSE2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	PXOR X7, X7

loop16:
	CMPQ CX, $16
	JLT  tailsetup
	MOVOU (SI), X0
	MOVOU (DI), X2
	MOVOU X0, X1
	MOVOU X2, X3
	PUNPCKLBW X0, X0
	PSRAW $8, X0
	PUNPCKHBW X1, X1
	PSRAW $8, X1
	PUNPCKLBW X2, X2
	PSRAW $8, X2
	PUNPCKHBW X3, X3
	PSRAW $8, X3
	PMADDWL X2, X0
	PMADDWL X3, X1
	PADDD X0, X7
	PADDD X1, X7
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  loop16

tailsetup:
	// Horizontal reduction of the 4 int32 lanes into AX.
	PSHUFD $0x4E, X7, X0
	PADDD  X0, X7
	PSHUFD $0x01, X7, X0
	PADDD  X0, X7
	MOVQ   X7, AX

tailloop:
	TESTQ CX, CX
	JEQ   done
	MOVBLSX (SI), R8
	MOVBLSX (DI), R9
	IMULL R9, R8
	ADDL  R8, AX
	INCQ  SI
	INCQ  DI
	DECQ  CX
	JMP   tailloop

done:
	MOVL AX, ret+24(FP)
	RET
