package vecmath

// Batched arena kernels. Each scores one query against len(idxs)
// candidate vectors resident in a contiguous arena: candidate j is the
// window arena[idxs[j]*stride : idxs[j]*stride+len(q)], and its score
// lands in out[j]. stride is in elements and must be ≥ len(q) (equal for
// a packed arena; larger when rows carry padding). The layout is exactly
// the struct-of-arrays arena the HNSW index stores, so traversal can hand
// an adjacency list straight to the kernel.
//
// Results are bit-identical to len(idxs) single-kernel calls at every
// length and on every tier: the SIMD batch kernels run the same canonical
// 8-lane accumulation per candidate as their single-call forms and only
// amortize what sits around the inner loop — the dispatch load, the
// call/spill overhead, and (on amd64) a software prefetch of the next
// candidate's first cache lines issued while the current one is scored.
//
// All three panic on a malformed batch (short out, stride below the
// query length, or an index whose window leaves the arena) — like Dot's
// dimension-mismatch panic, those are programming errors, and the check
// is what lets the assembly kernels run raw loads safely.

// DotBatch writes the dot product of q with each indexed candidate into
// out[0:len(idxs)].
func DotBatch(q, arena []float32, stride int, idxs []int32, out []float32) {
	checkBatch(len(q), len(arena), stride, idxs, len(out))
	if len(idxs) == 0 {
		return
	}
	if len(q) == 0 {
		zeroF32(out[:len(idxs)])
		return
	}
	active.Load().dotBatch(q, arena, stride, idxs, out[:len(idxs)])
}

// SquaredL2Batch writes the squared Euclidean distance between q and each
// indexed candidate into out[0:len(idxs)].
func SquaredL2Batch(q, arena []float32, stride int, idxs []int32, out []float32) {
	checkBatch(len(q), len(arena), stride, idxs, len(out))
	if len(idxs) == 0 {
		return
	}
	if len(q) == 0 {
		zeroF32(out[:len(idxs)])
		return
	}
	active.Load().sqL2Batch(q, arena, stride, idxs, out[:len(idxs)])
}

// DotInt8Batch writes the int32-accumulated dot product of q with each
// indexed int8 candidate into out[0:len(idxs)]. It is the batched form of
// DotInt8 and shares its exactness argument: integer arithmetic never
// rounds, so every tier returns identical values.
func DotInt8Batch(q, arena []int8, stride int, idxs []int32, out []int32) {
	checkBatch(len(q), len(arena), stride, idxs, len(out))
	if len(idxs) == 0 {
		return
	}
	if len(q) == 0 {
		for j := range idxs {
			out[j] = 0
		}
		return
	}
	active.Load().dotInt8Batch(q, arena, stride, idxs, out[:len(idxs)])
}

// checkBatch validates a batch call's shape up front: every violation is
// a programming error (the index layers compute these bounds), and
// rejecting them here keeps the assembly kernels' unchecked loads inside
// the arena.
func checkBatch(dim, arenaLen, stride int, idxs []int32, outLen int) {
	if outLen < len(idxs) {
		panic("vecmath: batch output shorter than index list")
	}
	if stride < dim {
		panic("vecmath: batch stride below query length")
	}
	for _, ix := range idxs {
		if ix < 0 || int(ix)*stride+dim > arenaLen {
			panic("vecmath: batch index outside arena")
		}
	}
}

func zeroF32(out []float32) {
	for i := range out {
		out[i] = 0
	}
}

// dotBatchScalar is the portable batched dot: a loop over the scalar
// reference kernel, and the oracle every SIMD batch kernel is tested
// against. Shape is pre-validated by the public wrappers.
func dotBatchScalar(q, arena []float32, stride int, idxs []int32, out []float32) {
	d := len(q)
	for j, ix := range idxs {
		base := int(ix) * stride
		out[j] = dotScalar(q, arena[base:base+d])
	}
}

// sqL2BatchScalar is the portable batched squared-L2 reference.
func sqL2BatchScalar(q, arena []float32, stride int, idxs []int32, out []float32) {
	d := len(q)
	for j, ix := range idxs {
		base := int(ix) * stride
		out[j] = sqL2Scalar(q, arena[base:base+d])
	}
}

// dotInt8BatchScalar is the portable batched int8 dot reference.
func dotInt8BatchScalar(q, arena []int8, stride int, idxs []int32, out []int32) {
	d := len(q)
	for j, ix := range idxs {
		base := int(ix) * stride
		out[j] = dotInt8Scalar(q, arena[base:base+d])
	}
}
