//go:build !amd64 || purego

package vecmath

// dotInt8Kernel dispatches to the portable scalar kernel on platforms
// without an assembly implementation.
func dotInt8Kernel(a, b []int8) int32 {
	return dotInt8Scalar(a, b)
}
