//go:build !amd64 || purego

package vecmath

// detectInt8Tiers on platforms without int8 assembly (arm64 included —
// the NEON rung there covers float32 only so far) offers just the
// portable scalar half. Integer math is exact, so this differs from the
// amd64 tiers in speed only.
func detectInt8Tiers() []int8Kernels { return []int8Kernels{scalarInt8} }
