package vecmath

import (
	"fmt"
	"testing"
)

// Benchmark sinks keep the compiler from eliding the kernel calls.
var (
	sinkI int32
	sinkF float32
)

// BenchmarkKernels compares the int8 speed-tier kernel (SSE2 on amd64)
// against the float32 traversal kernel and the portable scalar fallback
// at the embedding widths that matter: the quantized tier's per-distance
// advantage is the int8/float32 ratio printed here, and the SIMD float32
// tier's advantage is the dispatched/scalar ratio. dim 384 is the repo's
// default embedding width — the ≥2× AVX2-vs-scalar acceptance bar is
// measured there. b.SetBytes makes the tool report MB/s (two input
// vectors of 4-byte lanes per call).
func BenchmarkKernels(b *testing.B) {
	for _, dim := range []int{64, 256, 384} {
		a8 := make([]int8, dim)
		b8 := make([]int8, dim)
		af := make([]float32, dim)
		bf := make([]float32, dim)
		for i := 0; i < dim; i++ {
			a8[i] = int8(i*7 - 60)
			b8[i] = int8(i*3 - 40)
			af[i] = float32(i) * 0.01
			bf[i] = float32(i) * 0.02
		}
		floatBytes := int64(2 * 4 * dim)
		b.Run(fmt.Sprintf("DotInt8/%d", dim), func(b *testing.B) {
			b.SetBytes(int64(2 * dim))
			for i := 0; i < b.N; i++ {
				sinkI = DotInt8(a8, b8)
			}
		})
		b.Run(fmt.Sprintf("DotInt8Scalar/%d", dim), func(b *testing.B) {
			b.SetBytes(int64(2 * dim))
			for i := 0; i < b.N; i++ {
				sinkI = dotInt8Scalar(a8, b8)
			}
		})
		b.Run(fmt.Sprintf("Dot/%s/%d", DetectedTier(), dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = Dot(af, bf)
			}
		})
		b.Run(fmt.Sprintf("Dot/scalar/%d", dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = dotScalar(af, bf)
			}
		})
		b.Run(fmt.Sprintf("SquaredL2/%s/%d", DetectedTier(), dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = SquaredL2(af, bf)
			}
		})
		b.Run(fmt.Sprintf("SquaredL2/scalar/%d", dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = sqL2Scalar(af, bf)
			}
		})
		b.Run(fmt.Sprintf("CosineWithNorms/%s/%d", DetectedTier(), dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			na, nb := Norm(af), Norm(bf)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkF = CosineWithNorms(af, bf, na, nb)
			}
		})
	}
}

// BenchmarkBatchKernels compares one batched call against a loop of
// single calls at the traversal shape that matters: one query scored
// against an HNSW adjacency list (32 neighbors) at the default embedding
// width. The batched/single ratio is the dispatch-amortization win the
// traversal layer banks on; per-op time is normalized per candidate via
// b.N*batch iterations so the two shapes read on the same scale.
func BenchmarkBatchKernels(b *testing.B) {
	const dim, rows, batch = 384, 64, 32
	q := make([]float32, dim)
	arena := make([]float32, rows*dim)
	q8 := make([]int8, dim)
	arena8 := make([]int8, rows*dim)
	for i := range arena {
		arena[i] = float32(i%97) * 0.013
	}
	for i := range arena8 {
		arena8[i] = int8(i%251 - 125)
	}
	for i := 0; i < dim; i++ {
		q[i] = float32(i) * 0.007
		q8[i] = int8(i*5 - 90)
	}
	idxs := make([]int32, batch)
	for j := range idxs {
		idxs[j] = int32((j * 29) % rows)
	}
	outF := make([]float32, batch)
	out8 := make([]int32, batch)
	perCand := int64(2 * 4 * dim)

	b.Run(fmt.Sprintf("DotBatch/%s/%d", DetectedTier(), dim), func(b *testing.B) {
		b.SetBytes(perCand * batch)
		for i := 0; i < b.N; i++ {
			DotBatch(q, arena, dim, idxs, outF)
		}
	})
	b.Run(fmt.Sprintf("DotLoop/%s/%d", DetectedTier(), dim), func(b *testing.B) {
		b.SetBytes(perCand * batch)
		for i := 0; i < b.N; i++ {
			for _, ix := range idxs {
				sinkF = Dot(q, arena[int(ix)*dim:int(ix)*dim+dim])
			}
		}
	})
	b.Run(fmt.Sprintf("SquaredL2Batch/%s/%d", DetectedTier(), dim), func(b *testing.B) {
		b.SetBytes(perCand * batch)
		for i := 0; i < b.N; i++ {
			SquaredL2Batch(q, arena, dim, idxs, outF)
		}
	})
	b.Run(fmt.Sprintf("DotInt8Batch/%s/%d", DetectedInt8Tier(), dim), func(b *testing.B) {
		b.SetBytes(int64(2*dim) * batch)
		for i := 0; i < b.N; i++ {
			DotInt8Batch(q8, arena8, dim, idxs, out8)
		}
	})
	b.Run(fmt.Sprintf("DotInt8Loop/%s/%d", DetectedInt8Tier(), dim), func(b *testing.B) {
		b.SetBytes(int64(2*dim) * batch)
		for i := 0; i < b.N; i++ {
			for _, ix := range idxs {
				sinkI = DotInt8(q8, arena8[int(ix)*dim:int(ix)*dim+dim])
			}
		}
	})
}
