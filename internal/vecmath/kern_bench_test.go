package vecmath

import (
	"fmt"
	"testing"
)

// Benchmark sinks keep the compiler from eliding the kernel calls.
var (
	sinkI int32
	sinkF float32
)

// BenchmarkKernels compares the int8 speed-tier kernel (SSE2 on amd64)
// against the float32 traversal kernel and the portable scalar fallback
// at the embedding widths that matter: the quantized tier's per-distance
// advantage is the int8/float32 ratio printed here.
func BenchmarkKernels(b *testing.B) {
	for _, dim := range []int{64, 256} {
		a8 := make([]int8, dim)
		b8 := make([]int8, dim)
		af := make([]float32, dim)
		bf := make([]float32, dim)
		for i := 0; i < dim; i++ {
			a8[i] = int8(i*7 - 60)
			b8[i] = int8(i*3 - 40)
			af[i] = float32(i) * 0.01
			bf[i] = float32(i) * 0.02
		}
		b.Run(fmt.Sprintf("DotInt8/%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkI = DotInt8(a8, b8)
			}
		})
		b.Run(fmt.Sprintf("DotInt8Scalar/%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkI = dotInt8Scalar(a8, b8)
			}
		})
		b.Run(fmt.Sprintf("SquaredL2/%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = SquaredL2(af, bf)
			}
		})
	}
}
