package vecmath

import (
	"fmt"
	"testing"
)

// Benchmark sinks keep the compiler from eliding the kernel calls.
var (
	sinkI int32
	sinkF float32
)

// BenchmarkKernels compares the int8 speed-tier kernel (SSE2 on amd64)
// against the float32 traversal kernel and the portable scalar fallback
// at the embedding widths that matter: the quantized tier's per-distance
// advantage is the int8/float32 ratio printed here, and the SIMD float32
// tier's advantage is the dispatched/scalar ratio. dim 384 is the repo's
// default embedding width — the ≥2× AVX2-vs-scalar acceptance bar is
// measured there. b.SetBytes makes the tool report MB/s (two input
// vectors of 4-byte lanes per call).
func BenchmarkKernels(b *testing.B) {
	for _, dim := range []int{64, 256, 384} {
		a8 := make([]int8, dim)
		b8 := make([]int8, dim)
		af := make([]float32, dim)
		bf := make([]float32, dim)
		for i := 0; i < dim; i++ {
			a8[i] = int8(i*7 - 60)
			b8[i] = int8(i*3 - 40)
			af[i] = float32(i) * 0.01
			bf[i] = float32(i) * 0.02
		}
		floatBytes := int64(2 * 4 * dim)
		b.Run(fmt.Sprintf("DotInt8/%d", dim), func(b *testing.B) {
			b.SetBytes(int64(2 * dim))
			for i := 0; i < b.N; i++ {
				sinkI = DotInt8(a8, b8)
			}
		})
		b.Run(fmt.Sprintf("DotInt8Scalar/%d", dim), func(b *testing.B) {
			b.SetBytes(int64(2 * dim))
			for i := 0; i < b.N; i++ {
				sinkI = dotInt8Scalar(a8, b8)
			}
		})
		b.Run(fmt.Sprintf("Dot/%s/%d", DetectedTier(), dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = Dot(af, bf)
			}
		})
		b.Run(fmt.Sprintf("Dot/scalar/%d", dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = dotScalar(af, bf)
			}
		})
		b.Run(fmt.Sprintf("SquaredL2/%s/%d", DetectedTier(), dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = SquaredL2(af, bf)
			}
		})
		b.Run(fmt.Sprintf("SquaredL2/scalar/%d", dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			for i := 0; i < b.N; i++ {
				sinkF = sqL2Scalar(af, bf)
			}
		})
		b.Run(fmt.Sprintf("CosineWithNorms/%s/%d", DetectedTier(), dim), func(b *testing.B) {
			b.SetBytes(floatBytes)
			na, nb := Norm(af), Norm(bf)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkF = CosineWithNorms(af, bf, na, nb)
			}
		})
	}
}
