//go:build amd64 && !purego

#include "textflag.h"

// AVX2 float32 kernels. Both follow the canonical lane-accumulation
// scheme of the pure-Go reference (vecmath.go): blocks of eight elements
// accumulate into eight independent lanes held in one YMM register
// (lane j sums the elements with index ≡ j mod 8), the lanes reduce in
// the fixed order ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)), and the
// sub-block tail is added sequentially onto the block sum. No FMA is
// used anywhere — VMULPS/VADDPS round each product before the add,
// exactly like the reference — so the results are bit-identical to the
// scalar tier at every input length.
//
// The VHADDPS pair computes [x1+x0, x3+x2, ...] twice, which is
// (x0+x1)+(x2+x3) up to operand order within each add; IEEE float
// addition is commutative (only associativity fails), so the bit pattern
// matches the reference reduction exactly.

// func dotAVX2(a, b *float32, n int) float32
TEXT ·dotAVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $3, BX            // BX = full 8-lane blocks
	JZ   reduce

blocks:
	VMOVUPS (SI), Y1
	VMOVUPS (DI), Y2
	VMULPS  Y2, Y1, Y1
	VADDPS  Y1, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  blocks

reduce:
	VEXTRACTF128 $1, Y0, X1
	VHADDPS X0, X0, X0     // [s0+s1, s2+s3, ...]
	VHADDPS X0, X0, X0     // lane0 = (s0+s1)+(s2+s3)
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1     // lane0 = (s4+s5)+(s6+s7)
	VADDSS  X1, X0, X0     // block sum, low half first
	ANDQ $7, CX
	JZ   done

tail:
	VMOVSS (SI), X2
	VMOVSS (DI), X3
	VMULSS X3, X2, X2
	VADDSS X2, X0, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  tail

done:
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func sqL2AVX2(a, b *float32, n int) float32
TEXT ·sqL2AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   reduce

blocks:
	VMOVUPS (SI), Y1
	VMOVUPS (DI), Y2
	VSUBPS  Y2, Y1, Y1     // d = a - b
	VMULPS  Y1, Y1, Y1     // d*d
	VADDPS  Y1, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  blocks

reduce:
	VEXTRACTF128 $1, Y0, X1
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VADDSS  X1, X0, X0
	ANDQ $7, CX
	JZ   done

tail:
	VMOVSS (SI), X2
	VMOVSS (DI), X3
	VSUBSS X3, X2, X2
	VMULSS X2, X2, X2
	VADDSS X2, X0, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  tail

done:
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// Batched AVX2 float32 kernels. One call scores the query against n
// arena candidates: candidate j lives at arena + idxs[j]*stride*4 and its
// score lands in out[j]. The per-candidate inner loop is byte-for-byte
// the single-kernel scheme above (same lanes, same reduction, same scalar
// tail, no FMA), so each out[j] is bit-identical to a single-kernel call;
// the batch only moves the candidate loop into assembly — argument
// marshalling and the dispatch load are paid once, the query pointer
// stays in a register, and the next candidate's first two cache lines are
// prefetched while the current one is scored. Requires n > 0 and dim > 0;
// indices must be pre-validated (the Go wrapper checks them against the
// arena bounds).

// func dotBatchAVX2(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)
TEXT ·dotBatchAVX2(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), SI
	MOVQ arena+8(FP), DX
	MOVQ stride+16(FP), R8
	SHLQ $2, R8            // stride in bytes
	MOVQ idxs+24(FP), R9
	MOVQ n+32(FP), R10
	MOVQ dim+40(FP), R11
	MOVQ out+48(FP), R12

outer:
	MOVLQSX (R9), AX       // current candidate index
	IMULQ R8, AX
	LEAQ (DX)(AX*1), DI    // candidate pointer
	CMPQ R10, $2
	JLT  inner             // last candidate: nothing to prefetch
	MOVLQSX 4(R9), BX      // next candidate index
	IMULQ R8, BX
	PREFETCHT0 (DX)(BX*1)
	PREFETCHT0 64(DX)(BX*1)

inner:
	MOVQ SI, R13           // rewind query pointer
	MOVQ R11, CX
	VXORPS Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   reduce

blocks:
	VMOVUPS (R13), Y1
	VMOVUPS (DI), Y2
	VMULPS  Y2, Y1, Y1
	VADDPS  Y1, Y0, Y0
	ADDQ $32, R13
	ADDQ $32, DI
	DECQ BX
	JNZ  blocks

reduce:
	VEXTRACTF128 $1, Y0, X1
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VADDSS  X1, X0, X0
	ANDQ $7, CX
	JZ   store

tail:
	VMOVSS (R13), X2
	VMOVSS (DI), X3
	VMULSS X3, X2, X2
	VADDSS X2, X0, X0
	ADDQ $4, R13
	ADDQ $4, DI
	DECQ CX
	JNZ  tail

store:
	VMOVSS X0, (R12)
	ADDQ $4, R12
	ADDQ $4, R9
	DECQ R10
	JNZ  outer
	VZEROUPPER
	RET

// func sqL2BatchAVX2(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)
TEXT ·sqL2BatchAVX2(SB), NOSPLIT, $0-56
	MOVQ q+0(FP), SI
	MOVQ arena+8(FP), DX
	MOVQ stride+16(FP), R8
	SHLQ $2, R8
	MOVQ idxs+24(FP), R9
	MOVQ n+32(FP), R10
	MOVQ dim+40(FP), R11
	MOVQ out+48(FP), R12

outer:
	MOVLQSX (R9), AX
	IMULQ R8, AX
	LEAQ (DX)(AX*1), DI
	CMPQ R10, $2
	JLT  inner
	MOVLQSX 4(R9), BX
	IMULQ R8, BX
	PREFETCHT0 (DX)(BX*1)
	PREFETCHT0 64(DX)(BX*1)

inner:
	MOVQ SI, R13
	MOVQ R11, CX
	VXORPS Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   reduce

blocks:
	VMOVUPS (R13), Y1
	VMOVUPS (DI), Y2
	VSUBPS  Y2, Y1, Y1
	VMULPS  Y1, Y1, Y1
	VADDPS  Y1, Y0, Y0
	ADDQ $32, R13
	ADDQ $32, DI
	DECQ BX
	JNZ  blocks

reduce:
	VEXTRACTF128 $1, Y0, X1
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VADDSS  X1, X0, X0
	ANDQ $7, CX
	JZ   store

tail:
	VMOVSS (R13), X2
	VMOVSS (DI), X3
	VSUBSS X3, X2, X2
	VMULSS X2, X2, X2
	VADDSS X2, X0, X0
	ADDQ $4, R13
	ADDQ $4, DI
	DECQ CX
	JNZ  tail

store:
	VMOVSS X0, (R12)
	ADDQ $4, R12
	ADDQ $4, R9
	DECQ R10
	JNZ  outer
	VZEROUPPER
	RET

// func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
