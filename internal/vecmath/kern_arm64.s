//go:build arm64 && !purego

#include "textflag.h"

// NEON float32 kernels. Both follow the canonical lane-accumulation
// scheme of the pure-Go reference (vecmath.go): blocks of eight elements
// accumulate into eight independent lanes, held here as two 4-lane vector
// registers (V0 = lanes 0..3, V1 = lanes 4..7), the lanes reduce in the
// fixed order ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)), and the sub-block
// tail is added sequentially onto the block sum. No FMLA anywhere — the
// separate FMUL/FADD round each product before the add, exactly like the
// reference (whose explicit float32 conversions exist to stop the
// compiler emitting FMLA) — so results are bit-identical to the scalar
// and AVX2 tiers at every input length.
//
// The Go assembler has no mnemonics for the vector floating-point ops, so
// they are WORD-encoded; each carries its A64 disassembly. FADDP on a
// register paired with itself computes [s1+s0, s3+s2, ...]; two rounds
// leave (s1+s0)+(s3+s2) in lane 0 — bit-equal to the reference reduction,
// since IEEE float addition is commutative (only associativity fails).

// func dotNEON(a, b *float32, n int) float32
TEXT ·dotNEON(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3
	CBZ  R3, reduce

blocks:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1.P 32(R1), [V4.S4, V5.S4]
	WORD $0x6E24DC42 // FMUL V2.4S, V2.4S, V4.4S
	WORD $0x6E25DC63 // FMUL V3.4S, V3.4S, V5.4S
	WORD $0x4E22D400 // FADD V0.4S, V0.4S, V2.4S
	WORD $0x4E23D421 // FADD V1.4S, V1.4S, V3.4S
	SUBS $1, R3, R3
	BNE  blocks

reduce:
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S -> [s1+s0, s3+s2, ...]
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S -> lane0 = (s1+s0)+(s3+s2)
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	FADDS F1, F0, F0 // block sum, low half first
	ANDS $7, R2, R2
	BEQ  done

tail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FMULS F3, F2, F2
	FADDS F2, F0, F0
	SUBS $1, R2, R2
	BNE  tail

done:
	FMOVS F0, ret+24(FP)
	RET

// func sqL2NEON(a, b *float32, n int) float32
TEXT ·sqL2NEON(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3
	CBZ  R3, reduce

blocks:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1.P 32(R1), [V4.S4, V5.S4]
	WORD $0x4EA4D442 // FSUB V2.4S, V2.4S, V4.4S (d = a - b)
	WORD $0x4EA5D463 // FSUB V3.4S, V3.4S, V5.4S
	WORD $0x6E22DC42 // FMUL V2.4S, V2.4S, V2.4S (d*d)
	WORD $0x6E23DC63 // FMUL V3.4S, V3.4S, V3.4S
	WORD $0x4E22D400 // FADD V0.4S, V0.4S, V2.4S
	WORD $0x4E23D421 // FADD V1.4S, V1.4S, V3.4S
	SUBS $1, R3, R3
	BNE  blocks

reduce:
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	FADDS F1, F0, F0
	ANDS $7, R2, R2
	BEQ  done

tail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FSUBS F3, F2, F2
	FMULS F2, F2, F2
	FADDS F2, F0, F0
	SUBS $1, R2, R2
	BNE  tail

done:
	FMOVS F0, ret+24(FP)
	RET

// Batched NEON float32 kernels. One call scores the query against n
// arena candidates: candidate j lives at arena + idxs[j]*stride*4 and its
// score lands in out[j]. The per-candidate inner loop is instruction-for-
// instruction the single-kernel scheme above (the WORD-encoded vector ops
// fix V0–V5 and load through R0/R1, so the batch keeps those as the
// moving inner pointers and holds batch state in R7–R13), making each
// out[j] bit-identical to a single-kernel call. The batch amortizes the
// call overhead, keeps the query base hot in a register, and PRFM-
// prefetches the next candidate's first two cache lines while the current
// one is scored. Requires n > 0 and dim > 0; indices are pre-validated by
// the Go wrapper.

// func dotBatchNEON(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)
TEXT ·dotBatchNEON(SB), NOSPLIT, $0-56
	MOVD q+0(FP), R7
	MOVD arena+8(FP), R8
	MOVD stride+16(FP), R9
	LSL  $2, R9            // stride in bytes
	MOVD idxs+24(FP), R10
	MOVD n+32(FP), R11
	MOVD dim+40(FP), R12
	MOVD out+48(FP), R13

outer:
	MOVW (R10), R1         // current candidate index (sign-extended)
	MUL  R9, R1, R1
	ADD  R8, R1, R1        // candidate pointer
	CMP  $2, R11
	BLT  inner             // last candidate: nothing to prefetch
	MOVW 4(R10), R4        // next candidate index
	MUL  R9, R4, R4
	ADD  R8, R4, R4
	PRFM (R4), PLDL1KEEP
	PRFM 64(R4), PLDL1KEEP

inner:
	MOVD R7, R0            // rewind query pointer
	MOVD R12, R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3
	CBZ  R3, reduce

blocks:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1.P 32(R1), [V4.S4, V5.S4]
	WORD $0x6E24DC42 // FMUL V2.4S, V2.4S, V4.4S
	WORD $0x6E25DC63 // FMUL V3.4S, V3.4S, V5.4S
	WORD $0x4E22D400 // FADD V0.4S, V0.4S, V2.4S
	WORD $0x4E23D421 // FADD V1.4S, V1.4S, V3.4S
	SUBS $1, R3, R3
	BNE  blocks

reduce:
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	FADDS F1, F0, F0
	ANDS $7, R2, R2
	BEQ  store

tail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FMULS F3, F2, F2
	FADDS F2, F0, F0
	SUBS $1, R2, R2
	BNE  tail

store:
	FMOVS.P F0, 4(R13)
	ADD  $4, R10, R10
	SUBS $1, R11, R11
	BNE  outer
	RET

// func sqL2BatchNEON(q, arena *float32, stride int, idxs *int32, n, dim int, out *float32)
TEXT ·sqL2BatchNEON(SB), NOSPLIT, $0-56
	MOVD q+0(FP), R7
	MOVD arena+8(FP), R8
	MOVD stride+16(FP), R9
	LSL  $2, R9
	MOVD idxs+24(FP), R10
	MOVD n+32(FP), R11
	MOVD dim+40(FP), R12
	MOVD out+48(FP), R13

outer:
	MOVW (R10), R1
	MUL  R9, R1, R1
	ADD  R8, R1, R1
	CMP  $2, R11
	BLT  inner
	MOVW 4(R10), R4
	MUL  R9, R4, R4
	ADD  R8, R4, R4
	PRFM (R4), PLDL1KEEP
	PRFM 64(R4), PLDL1KEEP

inner:
	MOVD R7, R0
	MOVD R12, R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3
	CBZ  R3, reduce

blocks:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1.P 32(R1), [V4.S4, V5.S4]
	WORD $0x4EA4D442 // FSUB V2.4S, V2.4S, V4.4S (d = a - b)
	WORD $0x4EA5D463 // FSUB V3.4S, V3.4S, V5.4S
	WORD $0x6E22DC42 // FMUL V2.4S, V2.4S, V2.4S (d*d)
	WORD $0x6E23DC63 // FMUL V3.4S, V3.4S, V3.4S
	WORD $0x4E22D400 // FADD V0.4S, V0.4S, V2.4S
	WORD $0x4E23D421 // FADD V1.4S, V1.4S, V3.4S
	SUBS $1, R3, R3
	BNE  blocks

reduce:
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E20D400 // FADDP V0.4S, V0.4S, V0.4S
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	WORD $0x6E21D421 // FADDP V1.4S, V1.4S, V1.4S
	FADDS F1, F0, F0
	ANDS $7, R2, R2
	BEQ  store

tail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FSUBS F3, F2, F2
	FMULS F2, F2, F2
	FADDS F2, F0, F0
	SUBS $1, R2, R2
	BNE  tail

store:
	FMOVS.P F0, 4(R13)
	ADD  $4, R10, R10
	SUBS $1, R11, R11
	BNE  outer
	RET
