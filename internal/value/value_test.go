package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindBool:   "boolean",
		KindInt:    "bigint",
		KindFloat:  "double",
		KindString: "varchar",
		KindTime:   "timestamp",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v, want KindNull", v.Kind())
	}
}

func TestFloatNaNBecomesNull(t *testing.T) {
	if !Float(math.NaN()).IsNull() {
		t.Fatal("Float(NaN) must be NULL")
	}
}

func TestAsFloat(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{Int(42), 42, true},
		{Float(3.5), 3.5, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{String("2.25"), 2.25, true},
		{String("  17 "), 17, true},
		{String("abc"), 0, false},
		{Null(), 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("AsFloat(%v) = (%v, %v), want (%v, %v)", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestAsBool(t *testing.T) {
	trues := []Value{Bool(true), Int(1), Float(0.5), String("yes"), String("TRUE"), String("1")}
	for _, v := range trues {
		b, ok := v.AsBool()
		if !ok || !b {
			t.Errorf("AsBool(%v) = (%v,%v), want (true,true)", v, b, ok)
		}
	}
	falses := []Value{Bool(false), Int(0), String("no"), String("f"), String("0")}
	for _, v := range falses {
		b, ok := v.AsBool()
		if !ok || b {
			t.Errorf("AsBool(%v) = (%v,%v), want (false,true)", v, b, ok)
		}
	}
	if _, ok := String("banana").AsBool(); ok {
		t.Error("AsBool(banana) should fail")
	}
}

func TestParseTimeLayouts(t *testing.T) {
	cases := []string{
		"2021-03-05",
		"2021/03/05",
		"03/05/2021",
		"March 5, 2021",
		"Mar 5, 2021",
		"5 March 2021",
		"2021-03-05 14:30:00",
	}
	for _, s := range cases {
		tm, ok := ParseTime(s)
		if !ok {
			t.Errorf("ParseTime(%q) failed", s)
			continue
		}
		if tm.Year() != 2021 || tm.Month() != time.March || tm.Day() != 5 {
			t.Errorf("ParseTime(%q) = %v, want 2021-03-05", s, tm)
		}
	}
	if _, ok := ParseTime("not a date"); ok {
		t.Error("ParseTime should fail on garbage")
	}
}

func TestInfer(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"", KindNull},
		{"NULL", KindNull},
		{"n/a", KindNull},
		{"42", KindInt},
		{"-7", KindInt},
		{"3.25", KindFloat},
		{"1e3", KindFloat},
		{"true", KindBool},
		{"False", KindBool},
		{"2020-01-15", KindTime},
		{"March 5, 2021", KindTime},
		{"hello", KindString},
		{"March", KindString},      // bare month name must stay a string
		{"A-12", KindString},       // code with dash but too short / no digit+sep date shape
		{"12-34-5678", KindString}, // not a parseable date
	}
	for _, c := range cases {
		if got := Infer(c.in).Kind(); got != c.kind {
			t.Errorf("Infer(%q).Kind() = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Int(1), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(1.5), Float(1.5), 0},
		{String("a"), String("b"), -1},
		{String("12"), String("9"), 1}, // numeric strings compare numerically
		{Bool(false), Bool(true), -1},
		{Time(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)), Time(time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)), -1},
		{Int(5), String("5"), 0}, // cross-kind numeric equality
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareStringNumericConsistency(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		va, vb := Float(a), Float(b)
		sa, sb := String(va.String()), String(vb.String())
		return Compare(va, vb) == Compare(sa, sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerceKind(t *testing.T) {
	v, ok := CoerceKind(String("42"), KindInt)
	if !ok || v.IntVal() != 42 {
		t.Errorf("CoerceKind(\"42\", int) = (%v, %v)", v, ok)
	}
	v, ok = CoerceKind(Int(3), KindString)
	if !ok || v.StringVal() != "3" {
		t.Errorf("CoerceKind(3, string) = (%v, %v)", v, ok)
	}
	if _, ok := CoerceKind(String("xyz"), KindFloat); ok {
		t.Error("CoerceKind(xyz, float) should fail")
	}
	v, ok = CoerceKind(Null(), KindFloat)
	if !ok || !v.IsNull() {
		t.Error("CoerceKind(NULL, float) must yield NULL, true")
	}
}

func TestUnifyKinds(t *testing.T) {
	cases := []struct {
		a, b, want Kind
	}{
		{KindInt, KindInt, KindInt},
		{KindInt, KindFloat, KindFloat},
		{KindFloat, KindInt, KindFloat},
		{KindNull, KindInt, KindInt},
		{KindInt, KindNull, KindInt},
		{KindInt, KindString, KindString},
		{KindTime, KindTime, KindTime},
		{KindTime, KindString, KindString},
	}
	for _, c := range cases {
		if got := UnifyKinds(c.a, c.b); got != c.want {
			t.Errorf("UnifyKinds(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStringRoundTripThroughInfer(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		return Infer(v.String()).IntVal() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{Bool(true), "true"},
		{Int(-12), "-12"},
		{Float(2.5), "2.5"},
		{String("hi"), "hi"},
		{Time(time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC)), "2020-05-04"},
		{Time(time.Date(2020, 5, 4, 13, 15, 0, 0, time.UTC)), "2020-05-04 13:15:00"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}
