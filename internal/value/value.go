// Package value implements the dynamic, nullable value system shared by the
// table store, the SQL engine and the transform toolkit.
//
// A Value carries one of a small set of runtime kinds (null, bool, int,
// float, string, time) together with coercion and comparison rules that
// mirror what an analytical engine such as DuckDB applies: ints widen to
// floats, comparable strings parse to numbers on demand, and NULL is
// absorbing for arithmetic while sorting first.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported runtime kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
)

// String returns the lower-case SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "bigint"
	case KindFloat:
		return "double"
	case KindString:
		return "varchar"
	case KindTime:
		return "timestamp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is int or float.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a dynamically typed, nullable scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	t    time.Time
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int wraps an int64.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64. NaN is normalized to NULL so that aggregates and
// comparisons never observe NaN.
func Float(f float64) Value {
	if math.IsNaN(f) {
		return Null()
	}
	return Value{kind: KindFloat, f: f}
}

// String wraps a string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Time wraps a timestamp.
func Time(t time.Time) Value { return Value{kind: KindTime, t: t} }

// Kind returns the runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// BoolVal returns the boolean payload (false unless KindBool).
func (v Value) BoolVal() bool { return v.kind == KindBool && v.b }

// IntVal returns the integer payload, coercing floats by truncation.
func (v Value) IntVal() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// FloatVal returns the numeric payload widened to float64; 0 for
// non-numeric kinds. Use AsFloat when failure must be observable.
func (v Value) FloatVal() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// StringVal returns the string payload ("" unless KindString).
func (v Value) StringVal() string {
	if v.kind == KindString {
		return v.s
	}
	return ""
}

// TimeVal returns the time payload (zero time unless KindTime).
func (v Value) TimeVal() time.Time {
	if v.kind == KindTime {
		return v.t
	}
	return time.Time{}
}

// AsFloat attempts a numeric view of the value: numerics widen, numeric
// strings parse, times convert to Unix seconds.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	case KindTime:
		return float64(v.t.Unix()), true
	default:
		return 0, false
	}
}

// AsInt attempts an integer view of the value.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			f, ok := v.AsFloat()
			if !ok {
				return 0, false
			}
			return int64(f), true
		}
		return i, true
	default:
		return 0, false
	}
}

// AsBool attempts a boolean view: bools pass through, numbers are non-zero,
// strings accept true/false/t/f/yes/no/1/0 case-insensitively.
func (v Value) AsBool() (bool, bool) {
	switch v.kind {
	case KindBool:
		return v.b, true
	case KindInt:
		return v.i != 0, true
	case KindFloat:
		return v.f != 0, true
	case KindString:
		switch strings.ToLower(strings.TrimSpace(v.s)) {
		case "true", "t", "yes", "y", "1":
			return true, true
		case "false", "f", "no", "n", "0":
			return false, true
		}
		return false, false
	default:
		return false, false
	}
}

// AsTime attempts a timestamp view, parsing common layouts for strings.
func (v Value) AsTime() (time.Time, bool) {
	switch v.kind {
	case KindTime:
		return v.t, true
	case KindString:
		return ParseTime(v.s)
	case KindInt:
		return time.Unix(v.i, 0).UTC(), true
	default:
		return time.Time{}, false
	}
}

// timeLayouts are tried in order by ParseTime. The list covers the formats
// the synthetic datasets and the transform toolkit emit or must repair.
var timeLayouts = []string{
	"2006-01-02T15:04:05Z07:00",
	"2006-01-02 15:04:05",
	"2006-01-02",
	"2006/01/02",
	"01/02/2006",
	"02-01-2006",
	"January 2, 2006",
	"Jan 2, 2006",
	"2 January 2006",
	"2006-01",
	"2006",
}

// ParseTime parses s using the shared layout list.
func ParseTime(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, false
	}
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), true
		}
	}
	return time.Time{}, false
}

// String renders the value the way the CSV writer and the UI print it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		if v.t.Hour() == 0 && v.t.Minute() == 0 && v.t.Second() == 0 {
			return v.t.Format("2006-01-02")
		}
		return v.t.Format("2006-01-02 15:04:05")
	default:
		return ""
	}
}

// Compare orders two values. NULL sorts before everything; mixed numeric
// kinds compare numerically; strings that both parse as numbers compare
// numerically, otherwise lexically; times compare chronologically. The
// result is -1, 0 or +1.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.kind.Numeric() && b.kind.Numeric() {
		return compareFloat(a.FloatVal(), b.FloatVal())
	}
	if a.kind == KindTime && b.kind == KindTime {
		switch {
		case a.t.Before(b.t):
			return -1
		case a.t.After(b.t):
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		default:
			return 0
		}
	}
	// Mixed or string comparison: try numeric view of both sides first so
	// that "12" > "9" behaves arithmetically, as users expect from repaired
	// CSV columns.
	if af, aok := a.AsFloat(); aok {
		if bf, bok := b.AsFloat(); bok {
			return compareFloat(af, bf)
		}
	}
	if a.kind == KindTime || b.kind == KindTime {
		at, aok := a.AsTime()
		bt, bok := b.AsTime()
		if aok && bok {
			switch {
			case at.Before(bt):
				return -1
			case at.After(bt):
				return 1
			default:
				return 0
			}
		}
	}
	return strings.Compare(a.render(), b.render())
}

func (v Value) render() string { return v.String() }

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare as equal. NULL equals NULL here
// (useful for grouping keys); SQL tri-state NULL handling lives in the
// expression evaluator, not in this helper.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Infer converts a raw CSV cell into the most specific Value: empty → NULL,
// then int, float, bool, timestamp, finally string.
func Infer(raw string) Value {
	s := strings.TrimSpace(raw)
	if s == "" || strings.EqualFold(s, "null") || strings.EqualFold(s, "na") || strings.EqualFold(s, "n/a") {
		return Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	switch strings.ToLower(s) {
	case "true", "false":
		b, _ := strconv.ParseBool(strings.ToLower(s))
		return Bool(b)
	}
	if t, ok := ParseTime(s); ok && looksLikeDate(s) {
		return Time(t)
	}
	return String(raw)
}

// looksLikeDate guards time inference: only strings containing a digit and a
// date separator or month name are eligible, so that ordinary words such as
// "March" alone, or codes such as "A-12", do not become timestamps.
func looksLikeDate(s string) bool {
	hasDigit := strings.ContainsAny(s, "0123456789")
	hasSep := strings.ContainsAny(s, "-/,") || strings.Contains(s, " ")
	return hasDigit && hasSep && len(s) >= 6
}

// CoerceKind converts v to the target kind, reporting failure instead of
// silently producing a zero. NULL coerces to NULL of any kind.
func CoerceKind(v Value, k Kind) (Value, bool) {
	if v.IsNull() {
		return Null(), true
	}
	switch k {
	case KindBool:
		b, ok := v.AsBool()
		if !ok {
			return Null(), false
		}
		return Bool(b), true
	case KindInt:
		i, ok := v.AsInt()
		if !ok {
			return Null(), false
		}
		return Int(i), true
	case KindFloat:
		f, ok := v.AsFloat()
		if !ok {
			return Null(), false
		}
		return Float(f), true
	case KindString:
		return String(v.String()), true
	case KindTime:
		t, ok := v.AsTime()
		if !ok {
			return Null(), false
		}
		return Time(t), true
	case KindNull:
		return Null(), true
	default:
		return Null(), false
	}
}

// UnifyKinds returns the narrowest kind both inputs widen to, used by the
// CSV type inferencer and by expression typing: int+float → float, any
// numeric+string → string, anything+null → the other kind.
func UnifyKinds(a, b Kind) Kind {
	if a == b {
		return a
	}
	if a == KindNull {
		return b
	}
	if b == KindNull {
		return a
	}
	if a.Numeric() && b.Numeric() {
		return KindFloat
	}
	return KindString
}
