// Package docs defines the uniform Document abstraction of the paper's IR
// System (§3.3): heterogeneous retrieval results — tables, domain knowledge
// notes, web pages — are all surfaced as Document objects so that new
// retrievers can be added without changing the rest of the system.
package docs

import (
	"fmt"
	"strings"

	"pneuma/internal/table"
)

// Kind classifies the payload of a Document.
type Kind string

// The document kinds the current retrievers produce.
const (
	// KindTable is a structured table from Pneuma-Retriever.
	KindTable Kind = "table"
	// KindKnowledge is a domain-knowledge note from the Document Database.
	KindKnowledge Kind = "knowledge"
	// KindWeb is a page from the Web Search interface.
	KindWeb Kind = "web"
)

// Document is the uniform retrieval result.
type Document struct {
	// ID uniquely identifies the document within its source.
	ID string
	// Kind is the payload class.
	Kind Kind
	// Title is a short human-readable name (table name, note topic, page
	// title).
	Title string
	// Content is the searchable text: schema summary for tables, note body
	// for knowledge, page text for web documents.
	Content string
	// Source names the retriever that produced the document
	// ("pneuma-retriever", "document-db", "web-search").
	Source string
	// Table is the structured payload for KindTable documents (and for web
	// documents that embed a table, e.g. a tariff schedule). Nil otherwise.
	Table *table.Table
	// Meta carries retriever-specific metadata (e.g. URL for web pages).
	Meta map[string]string
	// Score is the retriever's relevance score, comparable only within one
	// result list.
	Score float64
}

// Summary renders a compact description of the document for an LLM context:
// title, kind and the head of the content. Table documents include the
// schema and up to sampleRows sample rows, mirroring the paper's point that
// LLM Sim "can only observe sample rows to prevent hitting the context
// limit".
func (d *Document) Summary(sampleRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s (source: %s)\n", d.Kind, d.Title, d.Source)
	if d.Table != nil {
		b.WriteString("schema: ")
		b.WriteString(d.Table.Schema.String())
		b.WriteByte('\n')
		for _, c := range d.Table.Schema.Columns {
			if c.Description != "" {
				fmt.Fprintf(&b, "  %s: %s", c.Name, c.Description)
				if c.Unit != "" {
					fmt.Fprintf(&b, " [%s]", c.Unit)
				}
				b.WriteByte('\n')
			}
		}
		fmt.Fprintf(&b, "rows: %d\n", d.Table.NumRows())
		if sampleRows > 0 {
			b.WriteString(d.Table.Render(sampleRows))
		}
		return b.String()
	}
	content := d.Content
	const maxLen = 600
	if len(content) > maxLen {
		content = content[:maxLen] + "..."
	}
	b.WriteString(content)
	b.WriteByte('\n')
	return b.String()
}

// TableDocument builds the canonical document for a table: the content
// concatenates name, description, column names, column descriptions, units
// and a handful of sample values — the text both the BM25 and vector sides
// of the hybrid index consume.
func TableDocument(t *table.Table) Document {
	var b strings.Builder
	b.WriteString(t.Schema.Name)
	b.WriteByte(' ')
	b.WriteString(t.Schema.Description)
	b.WriteByte('\n')
	for _, c := range t.Schema.Columns {
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Description)
		if c.Unit != "" {
			b.WriteByte(' ')
			b.WriteString(c.Unit)
		}
		b.WriteByte('\n')
	}
	// Sample a few distinct values per column so value-literal queries
	// ("Malta", "Germany") can match the right table.
	profile := t.Head(200).BuildProfile()
	for _, cs := range profile.Columns {
		for _, s := range cs.SampleValues {
			if len(s) <= 32 {
				b.WriteString(s)
				b.WriteByte(' ')
			}
		}
	}
	return Document{
		ID:      "table:" + t.Schema.Name,
		Kind:    KindTable,
		Title:   t.Schema.Name,
		Content: b.String(),
		Source:  "pneuma-retriever",
		Table:   t,
	}
}
