package docs

import (
	"strings"
	"testing"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

func fixtureTable() *table.Table {
	t := table.New(table.Schema{
		Name:        "samples",
		Description: "chemistry samples",
		Columns: []table.Column{
			{Name: "site", Type: value.KindString, Description: "Site name"},
			{Name: "k_ppm", Type: value.KindFloat, Description: "Potassium (ppm)", Unit: "ppm"},
		},
	})
	t.MustAppend(table.Row{value.String("Malta"), value.Float(101.5)})
	t.MustAppend(table.Row{value.String("Gozo"), value.Float(88.2)})
	return t
}

func TestTableDocument(t *testing.T) {
	d := TableDocument(fixtureTable())
	if d.ID != "table:samples" || d.Kind != KindTable {
		t.Fatalf("doc = %+v", d)
	}
	// Content must carry name, descriptions and sample values so both index
	// halves can match on them.
	for _, want := range []string{"samples", "Potassium", "Malta", "k_ppm"} {
		if !strings.Contains(d.Content, want) {
			t.Errorf("content missing %q", want)
		}
	}
	if d.Table == nil {
		t.Fatal("table payload missing")
	}
}

func TestSummaryBoundsSampleRows(t *testing.T) {
	d := TableDocument(fixtureTable())
	s := d.Summary(1)
	if !strings.Contains(s, "schema:") || !strings.Contains(s, "rows: 2") {
		t.Errorf("summary:\n%s", s)
	}
	if !strings.Contains(s, "1 more rows") {
		t.Errorf("sample truncation missing:\n%s", s)
	}
}

func TestSummaryNonTableTruncates(t *testing.T) {
	d := Document{Kind: KindWeb, Title: "page", Source: "web-search",
		Content: strings.Repeat("x", 1000)}
	s := d.Summary(0)
	if len(s) > 800 {
		t.Errorf("web summary not truncated: %d bytes", len(s))
	}
}
