package pnerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCodeSentinels(t *testing.T) {
	err := Canceled("retriever: search", context.Canceled)
	if !errors.Is(err, ErrCanceled) {
		t.Error("errors.Is(err, ErrCanceled) = false")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("cause chain lost context.Canceled")
	}
	if errors.Is(err, ErrClosed) {
		t.Error("canceled error matched ErrClosed")
	}
	var e *Error
	if !errors.As(err, &e) || e.Op != "retriever: search" || e.Code != ErrCanceled {
		t.Errorf("errors.As gave %+v", e)
	}
}

func TestWrappedThroughLayers(t *testing.T) {
	inner := Closed("retriever: search")
	outer := fmt.Errorf("ir: source tables: %w", inner)
	joined := errors.Join(outer, errors.New("unrelated"))
	top := Degraded("ir: query", joined)

	if !errors.Is(top, ErrDegraded) {
		t.Error("top is not ErrDegraded")
	}
	if !errors.Is(top, ErrClosed) {
		t.Error("join traversal lost the inner ErrClosed")
	}
	if CodeOf(top) != ErrDegraded {
		t.Errorf("CodeOf = %q", CodeOf(top))
	}
}

func TestErrorStrings(t *testing.T) {
	if got := Closed("service: send").Error(); got != "service: send: closed" {
		t.Errorf("Error() = %q", got)
	}
	if got := BadQueryf("ir: query", "unknown source %q", "x").Error(); got != `ir: query: bad query: unknown source "x"` {
		t.Errorf("Error() = %q", got)
	}
}

func TestErrorIsMatchesSameCode(t *testing.T) {
	a := Corrupt("retriever: open", errors.New("bad manifest"))
	b := Corrupt("other", nil)
	if !errors.Is(a, b) {
		t.Error("two *Errors with the same code should match via errors.Is")
	}
}
