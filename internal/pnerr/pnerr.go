// Package pnerr defines the typed error vocabulary of the public pneuma
// API. Every error crossing the serving surface (Service, Session, the IR
// System, the retriever) is an *Error carrying a machine-checkable Code, so
// callers dispatch on errors.Is/errors.As instead of string matching.
//
// Code itself implements error, which makes the sentinel pattern work with
// the standard library:
//
//	if errors.Is(err, pnerr.ErrCanceled) { ... }     // match by code
//	var pe *pnerr.Error
//	if errors.As(err, &pe) { log(pe.Op, pe.Code) }   // inspect the wrapper
//
// Error.Unwrap exposes the underlying cause, so errors.Is(err,
// context.Canceled) also works when the cause chain contains it.
package pnerr

import (
	"errors"
	"fmt"
)

// Code classifies an Error. It implements error so the constants below act
// as errors.Is sentinels.
type Code string

// The error vocabulary of the serving API.
const (
	// ErrCanceled: the request's context was canceled or its deadline
	// expired before the work completed.
	ErrCanceled Code = "canceled"
	// ErrBadQuery: the request itself is malformed (unknown source, empty
	// message, invalid parameter) and retrying it unchanged cannot succeed.
	ErrBadQuery Code = "bad query"
	// ErrIndexCorrupt: persisted index state (manifest, segment files)
	// failed to load or disagrees with the configuration.
	ErrIndexCorrupt Code = "index corrupt"
	// ErrIndexLocked: the index directory is held by another live process;
	// retry after it closes the index (stale locks from dead processes are
	// broken automatically).
	ErrIndexLocked Code = "index locked"
	// ErrClosed: the component was closed; the request was never admitted.
	ErrClosed Code = "closed"
	// ErrDegraded: a fan-out completed partially — some sources answered,
	// others failed; partial results accompany the error detail.
	ErrDegraded Code = "degraded"
	// ErrOverloaded: the request was shed because the scheduler's wait
	// queue is full (or the estimated wait exceeds the serving bound);
	// unlike ErrBadQuery the same request can succeed later — back off and
	// retry.
	ErrOverloaded Code = "overloaded"
)

// Codes enumerates the complete error vocabulary above, in declaration
// order. Surfaces that must stay exhaustive over the vocabulary — the HTTP
// status mapping in internal/server is the motivating one — iterate this
// slice in tests, so adding a code without extending them fails loudly.
// Every new Code constant must be appended here.
func Codes() []Code {
	return []Code{
		ErrCanceled,
		ErrBadQuery,
		ErrIndexCorrupt,
		ErrIndexLocked,
		ErrClosed,
		ErrDegraded,
		ErrOverloaded,
	}
}

// Error implements error.
func (c Code) Error() string { return "pneuma: " + string(c) }

// Error is the typed error of the serving API: a code, the operation that
// failed, and the underlying cause (which may be an errors.Join of several
// causes, e.g. one per failed fan-out source).
type Error struct {
	// Code classifies the failure.
	Code Code
	// Op names the failing operation, e.g. "ir: query".
	Op string
	// Err is the underlying cause; may be nil for pure sentinel errors.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	switch {
	case e.Err == nil:
		return fmt.Sprintf("%s: %s", e.Op, string(e.Code))
	default:
		return fmt.Sprintf("%s: %s: %v", e.Op, string(e.Code), e.Err)
	}
}

// Unwrap exposes the cause chain to errors.Is/errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches Code sentinels and other *Error values with the same code.
func (e *Error) Is(target error) bool {
	if c, ok := target.(Code); ok {
		return e.Code == c
	}
	if t, ok := target.(*Error); ok {
		return e.Code == t.Code
	}
	return false
}

// New wraps err with a code and operation. A nil err is allowed (sentinel
// use).
func New(code Code, op string, err error) *Error {
	return &Error{Code: code, Op: op, Err: err}
}

// Canceled wraps a context cancellation. The cause defaults to
// context.Canceled semantics via ctxErr (pass ctx.Err()).
func Canceled(op string, ctxErr error) *Error {
	return &Error{Code: ErrCanceled, Op: op, Err: ctxErr}
}

// BadQueryf builds an ErrBadQuery with a formatted cause.
func BadQueryf(op, format string, args ...interface{}) *Error {
	return &Error{Code: ErrBadQuery, Op: op, Err: fmt.Errorf(format, args...)}
}

// Corrupt wraps a persisted-state loading failure as ErrIndexCorrupt.
func Corrupt(op string, err error) *Error {
	return &Error{Code: ErrIndexCorrupt, Op: op, Err: err}
}

// Locked wraps an index-directory contention failure as ErrIndexLocked.
func Locked(op string, err error) *Error {
	return &Error{Code: ErrIndexLocked, Op: op, Err: err}
}

// Closed builds an ErrClosed for the named operation.
func Closed(op string) *Error {
	return &Error{Code: ErrClosed, Op: op}
}

// Degraded wraps the joined per-source failures of a partially successful
// fan-out as ErrDegraded.
func Degraded(op string, err error) *Error {
	return &Error{Code: ErrDegraded, Op: op, Err: err}
}

// Overloaded builds an ErrOverloaded for the named operation — the load
// shedder's rejection when admitting one more request would let the wait
// queue grow without bound.
func Overloaded(op string) *Error {
	return &Error{Code: ErrOverloaded, Op: op}
}

// CodeOf extracts the Code from an error chain, or "" when the chain holds
// no *Error.
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}
