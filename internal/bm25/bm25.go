package bm25

import (
	"math"
	"sort"
	"sync"

	"pneuma/internal/textutil"
)

// Params are the BM25 free parameters.
type Params struct {
	// K1 controls term-frequency saturation. Default 1.2.
	K1 float64
	// B controls document-length normalization. Default 0.75.
	B float64
}

func (p Params) withDefaults() Params {
	if p.K1 <= 0 {
		p.K1 = 1.2
	}
	if p.B < 0 || p.B > 1 {
		p.B = 0.75
	}
	if p.B == 0 {
		p.B = 0.75
	}
	return p
}

type posting struct {
	doc int
	tf  int
}

type docInfo struct {
	id      string
	length  int
	deleted bool
	// tf keeps the document's term frequencies when the index feeds a
	// shared Stats object, so Delete and re-Add can reverse the document's
	// contribution exactly. Nil otherwise.
	tf map[string]int
}

// Index is an inverted index with BM25 ranking. Safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	params   Params
	postings map[string][]posting
	docs     []docInfo
	byID     map[string]int
	totalLen int
	liveDocs int
	// stats, when non-nil, is the shared corpus-statistics object this
	// index contributes to and scores against (see NewWithStats).
	stats *Stats
}

// New creates an empty index scored with its own local statistics.
func New(params Params) *Index {
	return NewWithStats(params, nil)
}

// NewWithStats creates an empty index that contributes its documents to the
// shared corpus statistics st and scores queries against st's global
// document count, average length and document frequencies instead of its
// own. Several shard indexes sharing one Stats rank exactly like a single
// index over the union of their corpora. A nil st is equivalent to New.
func NewWithStats(params Params, st *Stats) *Index {
	return &Index{
		params:   params.withDefaults(),
		postings: make(map[string][]posting),
		byID:     make(map[string]int),
		stats:    st,
	}
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// Add indexes text under id. Re-adding an ID replaces the old document
// (tombstoned; postings of dead docs are skipped at query time).
func (ix *Index) Add(id, text string) {
	tokens := textutil.NormalizeTokens(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()

	if old, ok := ix.byID[id]; ok {
		if !ix.docs[old].deleted {
			ix.docs[old].deleted = true
			ix.totalLen -= ix.docs[old].length
			ix.liveDocs--
			if ix.stats != nil {
				ix.stats.removeDoc(ix.docs[old].tf, ix.docs[old].length)
			}
		}
	}
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	docIdx := len(ix.docs)
	info := docInfo{id: id, length: len(tokens)}
	if ix.stats != nil {
		info.tf = tf
		ix.stats.addDoc(tf, len(tokens))
	}
	ix.docs = append(ix.docs, info)
	ix.byID[id] = docIdx
	ix.totalLen += len(tokens)
	ix.liveDocs++

	for term, f := range tf {
		ix.postings[term] = append(ix.postings[term], posting{doc: docIdx, tf: f})
	}
}

// Delete removes id from the index; returns false if absent.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	idx, ok := ix.byID[id]
	if !ok || ix.docs[idx].deleted {
		return false
	}
	ix.docs[idx].deleted = true
	ix.totalLen -= ix.docs[idx].length
	ix.liveDocs--
	if ix.stats != nil {
		ix.stats.removeDoc(ix.docs[idx].tf, ix.docs[idx].length)
	}
	delete(ix.byID, id)
	return true
}

// Result is one ranked hit.
type Result struct {
	ID    string
	Score float64
}

// Search returns the top-k documents for the query, ranked by BM25 score.
// Documents with zero overlap are never returned.
func (ix *Index) Search(query string, k int) []Result {
	if k <= 0 {
		return nil
	}
	terms := textutil.NormalizeTokens(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.liveDocs == 0 {
		return nil
	}
	// Corpus statistics: global when a shared Stats object is attached
	// (shard-partitioned deployment), local otherwise.
	var corpusDocs float64
	var avgLen float64
	if ix.stats != nil {
		corpusDocs = float64(ix.stats.DocCount())
		avgLen = ix.stats.AvgDocLen()
	} else {
		corpusDocs = float64(ix.liveDocs)
		avgLen = float64(ix.totalLen) / float64(ix.liveDocs)
	}
	if avgLen == 0 {
		avgLen = 1
	}

	// Deduplicate query terms but keep multiplicity as query weight. The
	// distinct terms are then processed in sorted order, NOT map order:
	// per-document scores are float sums over terms, float addition is not
	// associative, and Go randomizes map iteration — so map-order
	// accumulation would make a score's last ULP (and with it the order of
	// near-tied documents) vary run to run, breaking the determinism
	// contract.
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	qterms := make([]string, 0, len(qtf))
	for t := range qtf {
		qterms = append(qterms, t)
	}
	sort.Strings(qterms)

	scores := make(map[int]float64)
	for _, term := range qterms {
		qw := qtf[term]
		plist, ok := ix.postings[term]
		if !ok {
			continue
		}
		df := 0
		if ix.stats != nil {
			df = ix.stats.DocFreq(term)
		} else {
			for _, p := range plist {
				if !ix.docs[p.doc].deleted {
					df++
				}
			}
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (corpusDocs-float64(df)+0.5)/(float64(df)+0.5))
		for _, p := range plist {
			di := ix.docs[p.doc]
			if di.deleted {
				continue
			}
			tf := float64(p.tf)
			norm := ix.params.K1 * (1 - ix.params.B + ix.params.B*float64(di.length)/avgLen)
			scores[p.doc] += float64(qw) * idf * (tf * (ix.params.K1 + 1)) / (tf + norm)
		}
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]Result, 0, len(scores))
	for doc, s := range scores {
		out = append(out, Result{ID: ix.docs[doc].id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Vocabulary returns the number of distinct terms indexed (including terms
// only present in tombstoned documents).
func (ix *Index) Vocabulary() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}
