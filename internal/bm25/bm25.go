package bm25

import (
	"math"
	"sort"
	"sync"

	"pneuma/internal/textutil"
)

// Params are the BM25 free parameters.
type Params struct {
	// K1 controls term-frequency saturation. Default 1.2.
	K1 float64
	// B controls document-length normalization. Default 0.75.
	B float64
}

func (p Params) withDefaults() Params {
	if p.K1 <= 0 {
		p.K1 = 1.2
	}
	if p.B < 0 || p.B > 1 {
		p.B = 0.75
	}
	if p.B == 0 {
		p.B = 0.75
	}
	return p
}

type posting struct {
	doc int
	tf  int
}

// termFreq is one distinct term of a document with its in-document
// frequency.
type termFreq struct {
	term string
	tf   int
}

type docInfo struct {
	id      string
	length  int
	deleted bool
	// tf keeps the document's distinct term frequencies, sorted by term,
	// so Delete and re-Add can reverse the document's contribution
	// exactly — from the shared Stats object when one is attached, and
	// from the local live document frequencies otherwise. A sorted slice
	// rather than a map: it is only ever iterated, and the snapshot
	// loader rebuilds all documents' entries in one arena.
	tf []termFreq
}

// Index is an inverted index with BM25 ranking. Safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	params   Params
	postings map[string][]posting
	docs     []docInfo
	byID     map[string]int
	totalLen int
	liveDocs int
	// df holds live per-term document frequencies, maintained incrementally
	// by Add/Delete when the index scores against its own local statistics
	// (stats == nil). It replaces the per-query posting-list scan that used
	// to count tombstones. Nil when a shared Stats carries the frequencies.
	df map[string]int
	// stats, when non-nil, is the shared corpus-statistics object this
	// index contributes to and scores against (see NewWithStats).
	stats *Stats
	// deferStats marks an index undergoing a two-phase restore (see
	// DeferStats): ReadFrom parks the live document-frequency aggregate in
	// pendingAgg instead of materializing df, and AttachStats folds it
	// into the shared Stats without ever building the local map.
	deferStats bool
	pendingAgg []termFreq
	// scratch pools *searchScratch values so steady-state Search reuses its
	// dense score accumulator instead of allocating per query.
	scratch sync.Pool
}

// New creates an empty index scored with its own local statistics.
func New(params Params) *Index {
	return NewWithStats(params, nil)
}

// NewWithStats creates an empty index that contributes its documents to the
// shared corpus statistics st and scores queries against st's global
// document count, average length and document frequencies instead of its
// own. Several shard indexes sharing one Stats rank exactly like a single
// index over the union of their corpora. A nil st is equivalent to New.
func NewWithStats(params Params, st *Stats) *Index {
	ix := &Index{
		params:   params.withDefaults(),
		postings: make(map[string][]posting),
		byID:     make(map[string]int),
		stats:    st,
	}
	if st == nil {
		ix.df = make(map[string]int)
	}
	return ix
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// Add indexes text under id. Re-adding an ID replaces the old document
// (tombstoned; postings of dead docs are skipped at query time).
func (ix *Index) Add(id, text string) {
	tokens := textutil.NormalizeTokens(text)
	// Distinct terms with frequencies, by sorting the fresh token slice in
	// place and walking runs — no transient counting map. The sorted order
	// is also the docInfo.tf invariant the snapshot codec relies on.
	sort.Strings(tokens)
	tf := make([]termFreq, 0, len(tokens))
	for i := 0; i < len(tokens); {
		j := i + 1
		for j < len(tokens) && tokens[j] == tokens[i] {
			j++
		}
		tf = append(tf, termFreq{term: tokens[i], tf: j - i})
		i = j
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()

	if old, ok := ix.byID[id]; ok {
		if !ix.docs[old].deleted {
			ix.docs[old].deleted = true
			ix.totalLen -= ix.docs[old].length
			ix.liveDocs--
			ix.removeFreqsLocked(ix.docs[old].tf, ix.docs[old].length)
		}
	}
	docIdx := len(ix.docs)
	ix.docs = append(ix.docs, docInfo{id: id, length: len(tokens), tf: tf})
	ix.byID[id] = docIdx
	ix.totalLen += len(tokens)
	ix.liveDocs++
	if ix.stats != nil {
		ix.stats.addDoc(tf, len(tokens))
	} else {
		for _, e := range tf {
			ix.df[e.term]++
		}
	}

	for _, e := range tf {
		ix.postings[e.term] = append(ix.postings[e.term], posting{doc: docIdx, tf: e.tf})
	}
}

// Delete removes id from the index; returns false if absent.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	idx, ok := ix.byID[id]
	if !ok || ix.docs[idx].deleted {
		return false
	}
	ix.docs[idx].deleted = true
	ix.totalLen -= ix.docs[idx].length
	ix.liveDocs--
	ix.removeFreqsLocked(ix.docs[idx].tf, ix.docs[idx].length)
	delete(ix.byID, id)
	return true
}

// removeFreqsLocked reverses a document's statistics contribution: from the
// shared Stats object when one is attached, from the local live document
// frequencies otherwise.
func (ix *Index) removeFreqsLocked(tf []termFreq, length int) {
	if ix.stats != nil {
		ix.stats.removeDoc(tf, length)
		return
	}
	for _, e := range tf {
		if ix.df[e.term] > 1 {
			ix.df[e.term]--
		} else {
			delete(ix.df, e.term)
		}
	}
}

// Result is one ranked hit.
type Result struct {
	ID    string
	Score float64
}

// lexHit is one scored document during top-k selection.
type lexHit struct {
	doc   int32
	score float64
}

// searchScratch is the reusable per-query working state: a dense score
// accumulator and per-document length-norm cache (both epoch-stamped so a
// recycled scratch needs no zeroing), the touched-document list, and the
// bounded top-k heap. Instances cycle through Index.scratch; the sync.Pool
// contract applies (GC may drop pooled instances, so only steady-state
// queries are allocation-free).
type searchScratch struct {
	stamp   []uint32
	epoch   uint32
	scores  []float64
	norms   []float64
	touched []int32
	topk    []lexHit
}

// begin readies the scratch for a query over n document slots. Stale
// scores/norms from earlier queries are invalidated by bumping the epoch,
// not by clearing; the arrays are zeroed only on uint32 epoch wrap.
func (s *searchScratch) begin(n int) {
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.scores = make([]float64, n)
		s.norms = make([]float64, n)
		s.epoch = 0
	}
	s.stamp = s.stamp[:cap(s.stamp)]
	s.scores = s.scores[:len(s.stamp)]
	s.norms = s.norms[:len(s.stamp)]
	s.touched = s.touched[:0]
	s.topk = s.topk[:0]
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
}

// worseHit reports whether a ranks strictly below b in the result ordering
// (score descending, ID ascending). It is the top-k heap's "less", so the
// worst kept hit sits at the root.
func worseHit(ds []docInfo, a, b lexHit) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return ds[a.doc].id > ds[b.doc].id
}

func siftUpHit(ds []docInfo, h []lexHit, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worseHit(ds, h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDownHit(ds []docInfo, h []lexHit, i int) {
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && worseHit(ds, h[r], h[c]) {
			c = r
		}
		if !worseHit(ds, h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// Search returns the top-k documents for the query, ranked by BM25 score.
// Documents with zero overlap are never returned.
func (ix *Index) Search(query string, k int) []Result {
	if k <= 0 {
		return nil
	}
	terms := textutil.NormalizeTokens(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.liveDocs == 0 {
		return nil
	}
	// Corpus statistics: global when a shared Stats object is attached
	// (shard-partitioned deployment), local otherwise.
	var corpusDocs float64
	var avgLen float64
	if ix.stats != nil {
		corpusDocs = float64(ix.stats.DocCount())
		avgLen = ix.stats.AvgDocLen()
	} else {
		corpusDocs = float64(ix.liveDocs)
		avgLen = float64(ix.totalLen) / float64(ix.liveDocs)
	}
	if avgLen == 0 {
		avgLen = 1
	}

	// Query terms are deduplicated (multiplicity becomes the query weight)
	// by sorting the token slice in place and walking runs — no map, no
	// second slice. The sorted order is also load-bearing: per-document
	// scores are float sums over terms, float addition is not associative,
	// and Go randomizes map iteration — so map-order accumulation would
	// make a score's last ULP (and with it the order of near-tied
	// documents) vary run to run, breaking the determinism contract.
	sort.Strings(terms)

	s, _ := ix.scratch.Get().(*searchScratch)
	if s == nil {
		s = &searchScratch{}
	}
	defer ix.scratch.Put(s)
	s.begin(len(ix.docs))

	k1 := ix.params.K1
	b := ix.params.B
	for i := 0; i < len(terms); {
		term := terms[i]
		j := i + 1
		for j < len(terms) && terms[j] == term {
			j++
		}
		qw := float64(j - i)
		i = j

		plist, ok := ix.postings[term]
		if !ok {
			continue
		}
		var df int
		if ix.stats != nil {
			df = ix.stats.DocFreq(term)
		} else {
			df = ix.df[term]
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (corpusDocs-float64(df)+0.5)/(float64(df)+0.5))
		for _, p := range plist {
			di := &ix.docs[p.doc]
			if di.deleted {
				continue
			}
			// The length norm depends only on the document and the
			// query-constant avgLen, so it is computed once per touched
			// document, not once per posting.
			if s.stamp[p.doc] != s.epoch {
				s.stamp[p.doc] = s.epoch
				s.scores[p.doc] = 0
				s.norms[p.doc] = k1 * (1 - b + b*float64(di.length)/avgLen)
				s.touched = append(s.touched, int32(p.doc))
			}
			tf := float64(p.tf)
			s.scores[p.doc] += qw * idf * (tf * (k1 + 1)) / (tf + s.norms[p.doc])
		}
	}
	if len(s.touched) == 0 {
		return nil
	}

	// Bounded top-k selection: a k-sized heap with the worst kept hit on
	// top, instead of materializing and sorting every scored document. The
	// comparator is the total result order (score desc, ID asc; IDs are
	// unique), so the selected set and its final sorted order are identical
	// to what a full sort would produce, regardless of accumulation order.
	h := s.topk
	for _, d := range s.touched {
		hit := lexHit{doc: d, score: s.scores[d]}
		if len(h) < k {
			h = append(h, hit)
			siftUpHit(ix.docs, h, len(h)-1)
		} else if worseHit(ix.docs, h[0], hit) {
			h[0] = hit
			siftDownHit(ix.docs, h, 0)
		}
	}
	s.topk = h

	// Drain the heap worst-first into the result slice back to front, so
	// the caller sees best-first order.
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		top := h[0]
		out[i] = Result{ID: ix.docs[top.doc].id, Score: top.score}
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		siftDownHit(ix.docs, h, 0)
	}
	return out
}

// Vocabulary returns the number of distinct terms indexed (including terms
// only present in tombstoned documents).
func (ix *Index) Vocabulary() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}
