package bm25

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pneuma/internal/textutil"
)

// Params are the BM25 free parameters.
type Params struct {
	// K1 controls term-frequency saturation. Default 1.2.
	K1 float64
	// B controls document-length normalization. Default 0.75.
	B float64
}

func (p Params) withDefaults() Params {
	if p.K1 <= 0 {
		p.K1 = 1.2
	}
	if p.B < 0 || p.B > 1 {
		p.B = 0.75
	}
	if p.B == 0 {
		p.B = 0.75
	}
	return p
}

type posting struct {
	doc int
	tf  int
}

// termFreq is one distinct term of a document with its in-document
// frequency.
type termFreq struct {
	term string
	tf   int
}

type docInfo struct {
	id      string
	length  int
	deleted bool
	// tf keeps the document's distinct term frequencies, sorted by term,
	// so Delete and re-Add can reverse the document's contribution
	// exactly — from the shared Stats object when one is attached, and
	// from the local live document frequencies otherwise. A sorted slice
	// rather than a map: it is only ever iterated, and the snapshot
	// loader rebuilds all documents' entries in one arena.
	tf []termFreq
}

// termTable interns terms to dense slots. One table is shared by every
// view of a slot lineage: slots are append-only and never reassigned
// within a lineage, so a reader resolving a term against its pinned view
// simply ignores slots at or beyond the view's own slot count (terms
// interned after that view was published — see lexView.termSlot).
// sync.Map fits the access pattern exactly: lookups vastly outnumber
// inserts, Load is allocation-free on the query path, and only the
// mutex-serialized writer ever Stores. Sharing one table makes interning
// O(new terms) per batch, where the copy-on-write scheme used by the
// other view state would pay a full-vocabulary clone per batch — ruinous
// for one-document batches. Any rebuild that reassigns slots (Compact, a
// snapshot restore) starts a new lineage with a fresh table, so a slot's
// meaning never changes under a live view.
type termTable struct {
	m sync.Map // term string → int32 slot
}

func newTermTable() *termTable { return &termTable{} }

func (t *termTable) lookup(term string) (int32, bool) {
	v, ok := t.m.Load(term)
	if !ok {
		return 0, false
	}
	return v.(int32), true
}

func (t *termTable) intern(term string, slot int32) { t.m.Store(term, slot) }

// forEach calls fn for every term whose slot is below limit (the calling
// view's slot count), in unspecified order. Safe concurrent with writer
// inserts: terms interned after the caller pinned its view land at or
// beyond limit and are skipped.
func (t *termTable) forEach(limit int, fn func(term string, slot int32)) {
	t.m.Range(func(k, v any) bool {
		if slot := v.(int32); int(slot) < limit {
			fn(k.(string), slot)
		}
		return true
	})
}

// termPostings is one term's posting list. The struct is allocated once
// per slot and its address never changes, which keeps the outer plists
// array append-only — views share it without copy-on-write. The list
// itself grows through an atomically published header: the writer
// appends (the new element lands past every published view's visible
// prefix, so in-place growth within spare capacity is tail-safe) and
// stores the new header; readers load a header once and, because
// postings are appended in document-index order, trim it to their own
// view's document range (lexView.postings).
type termPostings struct {
	data atomic.Pointer[[]posting]
}

func (tp *termPostings) load() []posting {
	if p := tp.data.Load(); p != nil {
		return *p
	}
	return nil
}

func (tp *termPostings) append(p posting) {
	data := append(tp.load(), p)
	tp.data.Store(&data)
}

// lexView is one immutable published view of the index: everything the
// query path touches, frozen at a writer-batch boundary. Terms are
// interned to dense slots (terms) so the mutable per-term state —
// posting lists and, in local-statistics mode, live document
// frequencies — lives in slot-indexed structures that share across
// views cheaply.
//
// Views share storage where sharing is safe: the document table and the
// outer plists array grow in place past the published length (readers
// never index beyond their own view's len), the term table is shared
// outright (slots are append-only; termSlot bounds every hit by the
// view's own slot count), and posting lists are shared behind per-term
// atomic headers bounded per view by document index (termPostings).
// State a batch mutates *below* the published length — the document
// table when tombstoning, the df slice on any local-statistics change —
// is cloned by the draft before the first such mutation. The clones are
// what bound a batch's cost: nothing left in the write path copies the
// whole vocabulary, so a one-document batch costs O(document), not
// O(index).
type lexView struct {
	terms  *termTable      // term → slot, shared across the slot lineage
	plists []*termPostings // posting list per term slot
	docs   []docInfo
	// df holds live per-term document frequencies by slot, maintained by
	// Add/Delete when the index scores against its own local statistics
	// (stats == nil). Nil when a shared Stats carries the frequencies.
	df []int32
	// stats, when non-nil, is the shared corpus-statistics object this
	// index contributes to and scores against (see NewWithStats). It
	// lives in the view, not the Index, so AttachStats can switch scoring
	// modes with the same atomic publish that guards everything else.
	stats    *Stats
	totalLen int
	liveDocs int
}

// Index is an inverted index with BM25 ranking. Safe for concurrent use;
// queries are lock-free — they pin the current view with one atomic load
// and never block on writers (the one exception is the shared Stats
// object, read once per query under a brief RLock).
type Index struct {
	params Params

	// view is the published read-path state. Writers replace it
	// wholesale; readers load it once per query.
	view atomic.Pointer[lexView]

	// Writer-only state below; mu serializes writers, never readers.
	mu   sync.Mutex
	byID map[string]int
	// Batch bookkeeping: pubDocs is the published document-table length
	// at beginBatch; entries below it belong to older views and force a
	// clone (once per batch, tracked by the *Batch stamps) before any
	// in-place write.
	batch     uint64
	pubDocs   int
	docsBatch uint64
	dfBatch   uint64
	// deferStats marks an index undergoing a two-phase restore (see
	// DeferStats): ReadFrom parks the live document-frequency aggregate in
	// pendingAgg instead of materializing df, and AttachStats folds it
	// into the shared Stats without ever building the local slice.
	deferStats bool
	pendingAgg []termFreq
	// scratch pools *searchScratch values so steady-state Search reuses its
	// dense score accumulator instead of allocating per query.
	scratch sync.Pool
}

// New creates an empty index scored with its own local statistics.
func New(params Params) *Index {
	return NewWithStats(params, nil)
}

// NewWithStats creates an empty index that contributes its documents to the
// shared corpus statistics st and scores queries against st's global
// document count, average length and document frequencies instead of its
// own. Several shard indexes sharing one Stats rank exactly like a single
// index over the union of their corpora. A nil st is equivalent to New.
func NewWithStats(params Params, st *Stats) *Index {
	ix := &Index{
		params: params.withDefaults(),
		byID:   make(map[string]int),
	}
	v := &lexView{terms: newTermTable(), stats: st}
	if st == nil {
		v.df = []int32{}
	}
	ix.view.Store(v)
	return ix
}

// beginBatch opens a writer batch (mu must be held): the draft starts as a
// shallow copy of the published view; the mutation helpers below clone
// the arrays they touch at most once per batch.
func (ix *Index) beginBatch() *lexView {
	ix.batch++
	v := *ix.view.Load()
	ix.pubDocs = len(v.docs)
	return &v
}

func (ix *Index) publish(v *lexView) {
	ix.view.Store(v)
}

// termSlot resolves term to its slot in this view. The table is shared
// with newer views of the lineage, so a hit must also fall inside this
// view's slot range: a slot at or beyond len(plists) was interned after
// this view was frozen and is invisible to it. The same bound serves the
// writer resolving terms against its draft, whose plists length grows as
// the batch interns.
func (v *lexView) termSlot(term string) (int32, bool) {
	slot, ok := v.terms.lookup(term)
	if !ok || int(slot) >= len(v.plists) {
		return 0, false
	}
	return slot, true
}

// postings returns the slot's posting list as visible to this view.
// Lists are shared across the lineage and append-only, and postings are
// appended in document-index order, so the view's visible postings are
// exactly the prefix whose doc index falls inside the view's document
// table; anything past it was indexed after this view was frozen. The
// common case — no writer ran since the view was published — is a single
// tail check.
func (v *lexView) postings(slot int32) []posting {
	pl := v.plists[slot].load()
	nd := len(v.docs)
	if n := len(pl); n > 0 && pl[n-1].doc >= nd {
		pl = pl[:sort.Search(n, func(i int) bool { return pl[i].doc >= nd })]
	}
	return pl
}

// writableDocs makes the document table writable at slot idx (for
// tombstoning), cloning it once per batch when idx precedes the published
// length.
func (ix *Index) writableDocs(v *lexView, idx int) []docInfo {
	if idx < ix.pubDocs && ix.docsBatch != ix.batch {
		ix.docsBatch = ix.batch
		cl := make([]docInfo, len(v.docs))
		copy(cl, v.docs)
		v.docs = cl
	}
	return v.docs
}

// writableDF makes the local document-frequency slice writable, cloning it
// once per batch. Local-statistics mode only.
func (ix *Index) writableDF(v *lexView) []int32 {
	if ix.dfBatch != ix.batch {
		ix.dfBatch = ix.batch
		cl := make([]int32, len(v.df))
		copy(cl, v.df)
		v.df = cl
	}
	return v.df
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	return ix.view.Load().liveDocs
}

// tokenizeDoc turns text into (sorted distinct term frequencies, token
// count): the fresh token slice is sorted in place and runs are walked —
// no transient counting map. The sorted order is also the docInfo.tf
// invariant the snapshot codec relies on.
func tokenizeDoc(text string) ([]termFreq, int) {
	tokens := textutil.NormalizeTokens(text)
	sort.Strings(tokens)
	tf := make([]termFreq, 0, len(tokens))
	for i := 0; i < len(tokens); {
		j := i + 1
		for j < len(tokens) && tokens[j] == tokens[i] {
			j++
		}
		tf = append(tf, termFreq{term: tokens[i], tf: j - i})
		i = j
	}
	return tf, len(tokens)
}

// Add indexes text under id. Re-adding an ID replaces the old document
// (tombstoned; postings of dead docs are skipped at query time).
func (ix *Index) Add(id, text string) {
	tf, n := tokenizeDoc(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v := ix.beginBatch()
	ix.addLocked(v, id, tf, n)
	ix.publish(v)
}

// AddBatch indexes texts[i] under ids[i], in order, inside a single
// writer batch: the result is identical to len(ids) sequential Adds, but
// one new view is published at the end instead of one per document,
// amortizing the batch's copy-on-write cost.
func (ix *Index) AddBatch(ids, texts []string) {
	if len(ids) == 0 {
		return
	}
	tfs := make([][]termFreq, len(ids))
	lens := make([]int, len(ids))
	for i, t := range texts {
		tfs[i], lens[i] = tokenizeDoc(t)
		// Reads-first yield (see hnsw.AddBatch): tokenizing a multi-KB
		// document is the expensive part of a lexical batch, and it runs
		// outside the lock — but on a saturated box an unyielding loop
		// still starves concurrent searches of the scheduler.
		runtime.Gosched()
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	v := ix.beginBatch()
	for i := range ids {
		ix.addLocked(v, ids[i], tfs[i], lens[i])
	}
	ix.publish(v)
}

// addLocked applies one insert to the draft (mu held, batch open).
func (ix *Index) addLocked(v *lexView, id string, tf []termFreq, length int) {
	if old, ok := ix.byID[id]; ok {
		if !v.docs[old].deleted {
			docs := ix.writableDocs(v, old)
			docs[old].deleted = true
			v.totalLen -= docs[old].length
			v.liveDocs--
			ix.removeFreqsLocked(v, docs[old].tf, docs[old].length)
		}
	}
	docIdx := len(v.docs)
	v.docs = append(v.docs, docInfo{id: id, length: length, tf: tf})
	ix.byID[id] = docIdx
	v.totalLen += length
	v.liveDocs++
	if v.stats != nil {
		v.stats.addDoc(tf, length)
	}

	for _, e := range tf {
		slot, ok := v.termSlot(e.term)
		if !ok {
			slot = int32(len(v.plists))
			v.terms.intern(e.term, slot)
			v.plists = append(v.plists, &termPostings{})
			if v.stats == nil {
				v.df = append(v.df, 0)
			}
		}
		if v.stats == nil {
			ix.writableDF(v)[slot]++
		}
		v.plists[slot].append(posting{doc: docIdx, tf: e.tf})
	}
}

// Delete removes id from the index; returns false if absent.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	idx, ok := ix.byID[id]
	if !ok || ix.view.Load().docs[idx].deleted {
		return false
	}
	v := ix.beginBatch()
	ix.deleteLocked(v, idx, id)
	ix.publish(v)
	return true
}

// DeleteBatch tombstones every present ID inside a single writer batch and
// returns how many were present, publishing one new view at the end.
func (ix *Index) DeleteBatch(ids []string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	var v *lexView
	for _, id := range ids {
		idx, ok := ix.byID[id]
		if !ok {
			continue
		}
		if v == nil {
			v = ix.beginBatch()
		}
		if v.docs[idx].deleted {
			continue
		}
		ix.deleteLocked(v, idx, id)
		n++
	}
	if v != nil {
		ix.publish(v)
	}
	return n
}

func (ix *Index) deleteLocked(v *lexView, idx int, id string) {
	docs := ix.writableDocs(v, idx)
	docs[idx].deleted = true
	v.totalLen -= docs[idx].length
	v.liveDocs--
	ix.removeFreqsLocked(v, docs[idx].tf, docs[idx].length)
	delete(ix.byID, id)
}

// removeFreqsLocked reverses a document's statistics contribution: from the
// shared Stats object when one is attached, from the local live document
// frequencies otherwise.
func (ix *Index) removeFreqsLocked(v *lexView, tf []termFreq, length int) {
	if v.stats != nil {
		v.stats.removeDoc(tf, length)
		return
	}
	df := ix.writableDF(v)
	for _, e := range tf {
		if slot, ok := v.termSlot(e.term); ok && df[slot] > 0 {
			df[slot]--
		}
	}
}

// Result is one ranked hit.
type Result struct {
	ID    string
	Score float64
}

// lexHit is one scored document during top-k selection.
type lexHit struct {
	doc   int32
	score float64
}

// searchScratch is the reusable per-query working state: a dense score
// accumulator and per-document length-norm cache (both epoch-stamped so a
// recycled scratch needs no zeroing), the touched-document list, the
// bounded top-k heap, and the deduplicated query-term arrays. Instances
// cycle through Index.scratch; the sync.Pool contract applies (GC may
// drop pooled instances, so only steady-state queries are
// allocation-free).
type searchScratch struct {
	stamp   []uint32
	epoch   uint32
	scores  []float64
	norms   []float64
	touched []int32
	topk    []lexHit
	// Deduplicated query terms present in the index, with their weights,
	// term slots and (filled in one shared-Stats lock acquisition)
	// document frequencies.
	qterms []string
	qw     []float64
	qslots []int32
	qdf    []int32
}

// begin readies the scratch for a query over n document slots. Stale
// scores/norms from earlier queries are invalidated by bumping the epoch,
// not by clearing; the arrays are zeroed only on uint32 epoch wrap.
func (s *searchScratch) begin(n int) {
	if cap(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.scores = make([]float64, n)
		s.norms = make([]float64, n)
		s.epoch = 0
	}
	s.stamp = s.stamp[:cap(s.stamp)]
	s.scores = s.scores[:len(s.stamp)]
	s.norms = s.norms[:len(s.stamp)]
	s.touched = s.touched[:0]
	s.topk = s.topk[:0]
	s.qterms = s.qterms[:0]
	s.qw = s.qw[:0]
	s.qslots = s.qslots[:0]
	s.qdf = s.qdf[:0]
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
}

// worseHit reports whether a ranks strictly below b in the result ordering
// (score descending, ID ascending). It is the top-k heap's "less", so the
// worst kept hit sits at the root.
func worseHit(ds []docInfo, a, b lexHit) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return ds[a.doc].id > ds[b.doc].id
}

func siftUpHit(ds []docInfo, h []lexHit, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worseHit(ds, h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDownHit(ds []docInfo, h []lexHit, i int) {
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && worseHit(ds, h[r], h[c]) {
			c = r
		}
		if !worseHit(ds, h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// Search returns the top-k documents for the query, ranked by BM25 score.
// Documents with zero overlap are never returned. The whole query runs
// against the view published by the most recent completed writer batch.
func (ix *Index) Search(query string, k int) []Result {
	if k <= 0 {
		return nil
	}
	terms := textutil.NormalizeTokens(query)
	if len(terms) == 0 {
		return nil
	}
	v := ix.view.Load()
	if v.liveDocs == 0 {
		return nil
	}

	// Query terms are deduplicated (multiplicity becomes the query weight)
	// by sorting the token slice in place and walking runs — no map, no
	// second slice. The sorted order is also load-bearing: per-document
	// scores are float sums over terms, float addition is not associative,
	// and Go randomizes map iteration — so map-order accumulation would
	// make a score's last ULP (and with it the order of near-tied
	// documents) vary run to run, breaking the determinism contract.
	sort.Strings(terms)

	s, _ := ix.scratch.Get().(*searchScratch)
	if s == nil {
		s = &searchScratch{}
	}
	defer ix.scratch.Put(s)
	s.begin(len(v.docs))

	// Pass 1: resolve the distinct query terms present in this index to
	// their slots, keeping the sorted order (which fixes the float
	// accumulation order below).
	for i := 0; i < len(terms); {
		term := terms[i]
		j := i + 1
		for j < len(terms) && terms[j] == term {
			j++
		}
		qw := float64(j - i)
		i = j
		slot, ok := v.termSlot(term)
		if !ok {
			continue
		}
		s.qterms = append(s.qterms, term)
		s.qw = append(s.qw, qw)
		s.qslots = append(s.qslots, slot)
	}
	if len(s.qterms) == 0 {
		return nil
	}

	// Pass 2: corpus statistics — global when a shared Stats object is
	// attached (shard-partitioned deployment), snapshotted for all query
	// terms in one lock acquisition; local otherwise.
	if cap(s.qdf) < len(s.qterms) {
		s.qdf = make([]int32, len(s.qterms))
	}
	s.qdf = s.qdf[:len(s.qterms)]
	var corpusDocs float64
	var avgLen float64
	if v.stats != nil {
		n, avg := v.stats.QueryStats(s.qterms, s.qdf)
		corpusDocs = float64(n)
		avgLen = avg
	} else {
		if v.df == nil {
			// Mid two-phase restore (DeferStats before AttachStats): the
			// index has neither local nor shared statistics and scores no
			// results, matching the documented DeferStats contract.
			return nil
		}
		corpusDocs = float64(v.liveDocs)
		avgLen = float64(v.totalLen) / float64(v.liveDocs)
		for i, slot := range s.qslots {
			s.qdf[i] = v.df[slot]
		}
	}
	if avgLen == 0 {
		avgLen = 1
	}

	// Pass 3: score.
	k1 := ix.params.K1
	b := ix.params.B
	for qi := range s.qterms {
		df := float64(s.qdf[qi])
		if df == 0 {
			continue
		}
		qw := s.qw[qi]
		idf := math.Log(1 + (corpusDocs-df+0.5)/(df+0.5))
		for _, p := range v.postings(s.qslots[qi]) {
			di := &v.docs[p.doc]
			if di.deleted {
				continue
			}
			// The length norm depends only on the document and the
			// query-constant avgLen, so it is computed once per touched
			// document, not once per posting.
			if s.stamp[p.doc] != s.epoch {
				s.stamp[p.doc] = s.epoch
				s.scores[p.doc] = 0
				s.norms[p.doc] = k1 * (1 - b + b*float64(di.length)/avgLen)
				s.touched = append(s.touched, int32(p.doc))
			}
			tf := float64(p.tf)
			s.scores[p.doc] += qw * idf * (tf * (k1 + 1)) / (tf + s.norms[p.doc])
		}
	}
	if len(s.touched) == 0 {
		return nil
	}

	// Bounded top-k selection: a k-sized heap with the worst kept hit on
	// top, instead of materializing and sorting every scored document. The
	// comparator is the total result order (score desc, ID asc; IDs are
	// unique), so the selected set and its final sorted order are identical
	// to what a full sort would produce, regardless of accumulation order.
	h := s.topk
	for _, d := range s.touched {
		hit := lexHit{doc: d, score: s.scores[d]}
		if len(h) < k {
			h = append(h, hit)
			siftUpHit(v.docs, h, len(h)-1)
		} else if worseHit(v.docs, h[0], hit) {
			h[0] = hit
			siftDownHit(v.docs, h, 0)
		}
	}
	s.topk = h

	// Drain the heap worst-first into the result slice back to front, so
	// the caller sees best-first order.
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		top := h[0]
		out[i] = Result{ID: v.docs[top.doc].id, Score: top.score}
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		siftDownHit(v.docs, h, 0)
	}
	return out
}

// Vocabulary returns the number of distinct terms indexed (including terms
// only present in tombstoned documents). Each interned term owns exactly
// one posting-list slot, so the view's slot count is its vocabulary size.
func (ix *Index) Vocabulary() int {
	return len(ix.view.Load().plists)
}
