// Package bm25 implements an Okapi BM25 inverted index (Robertson &
// Zaragoza 2009), the lexical half of Pneuma-Retriever's hybrid index and
// the engine behind the FTS baseline.
//
// Documents are added incrementally; scoring uses the standard BM25 term
// weighting with the "plus 1" IDF variant so that terms present in more
// than half the corpus never receive negative weight.
package bm25

import (
	"math"
	"sort"
	"sync"

	"pneuma/internal/textutil"
)

// Params are the BM25 free parameters.
type Params struct {
	// K1 controls term-frequency saturation. Default 1.2.
	K1 float64
	// B controls document-length normalization. Default 0.75.
	B float64
}

func (p Params) withDefaults() Params {
	if p.K1 <= 0 {
		p.K1 = 1.2
	}
	if p.B < 0 || p.B > 1 {
		p.B = 0.75
	}
	if p.B == 0 {
		p.B = 0.75
	}
	return p
}

type posting struct {
	doc int
	tf  int
}

type docInfo struct {
	id      string
	length  int
	deleted bool
}

// Index is an inverted index with BM25 ranking. Safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	params   Params
	postings map[string][]posting
	docs     []docInfo
	byID     map[string]int
	totalLen int
	liveDocs int
}

// New creates an empty index.
func New(params Params) *Index {
	return &Index{
		params:   params.withDefaults(),
		postings: make(map[string][]posting),
		byID:     make(map[string]int),
	}
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs
}

// Add indexes text under id. Re-adding an ID replaces the old document
// (tombstoned; postings of dead docs are skipped at query time).
func (ix *Index) Add(id, text string) {
	tokens := textutil.NormalizeTokens(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()

	if old, ok := ix.byID[id]; ok {
		if !ix.docs[old].deleted {
			ix.docs[old].deleted = true
			ix.totalLen -= ix.docs[old].length
			ix.liveDocs--
		}
	}
	docIdx := len(ix.docs)
	ix.docs = append(ix.docs, docInfo{id: id, length: len(tokens)})
	ix.byID[id] = docIdx
	ix.totalLen += len(tokens)
	ix.liveDocs++

	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	for term, f := range tf {
		ix.postings[term] = append(ix.postings[term], posting{doc: docIdx, tf: f})
	}
}

// Delete removes id from the index; returns false if absent.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	idx, ok := ix.byID[id]
	if !ok || ix.docs[idx].deleted {
		return false
	}
	ix.docs[idx].deleted = true
	ix.totalLen -= ix.docs[idx].length
	ix.liveDocs--
	delete(ix.byID, id)
	return true
}

// Result is one ranked hit.
type Result struct {
	ID    string
	Score float64
}

// Search returns the top-k documents for the query, ranked by BM25 score.
// Documents with zero overlap are never returned.
func (ix *Index) Search(query string, k int) []Result {
	if k <= 0 {
		return nil
	}
	terms := textutil.NormalizeTokens(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.liveDocs == 0 {
		return nil
	}
	avgLen := float64(ix.totalLen) / float64(ix.liveDocs)
	if avgLen == 0 {
		avgLen = 1
	}

	// Deduplicate query terms but keep multiplicity as query weight.
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}

	scores := make(map[int]float64)
	for term, qw := range qtf {
		plist, ok := ix.postings[term]
		if !ok {
			continue
		}
		df := 0
		for _, p := range plist {
			if !ix.docs[p.doc].deleted {
				df++
			}
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (float64(ix.liveDocs)-float64(df)+0.5)/(float64(df)+0.5))
		for _, p := range plist {
			di := ix.docs[p.doc]
			if di.deleted {
				continue
			}
			tf := float64(p.tf)
			norm := ix.params.K1 * (1 - ix.params.B + ix.params.B*float64(di.length)/avgLen)
			scores[p.doc] += float64(qw) * idf * (tf * (ix.params.K1 + 1)) / (tf + norm)
		}
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]Result, 0, len(scores))
	for doc, s := range scores {
		out = append(out, Result{ID: ix.docs[doc].id, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Vocabulary returns the number of distinct terms indexed (including terms
// only present in tombstoned documents).
func (ix *Index) Vocabulary() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}
