package bm25

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The live-ingest design leans on one invariant: Stats updates are
// commutative. Shard writers fold addDoc/removeDoc deltas in whatever
// order their goroutines interleave, and the quiesced corpus statistics
// must still be exactly those of any sequential application of the same
// per-shard operation streams. This file is the property test for that
// invariant: randomized operation streams (adds, replacements, deletes),
// applied concurrently many times and sequentially in two different
// shard orders, must all converge to identical docCount, totalLen and
// per-term document frequencies.

// statsOp is one shard-local mutation in a generated stream.
type statsOp struct {
	id   string
	text string
	del  bool
}

// genStatsOps builds a randomized per-shard operation stream over a small
// shared vocabulary: adds of fresh IDs, occasional re-adds of an existing
// ID (the replacement path, which folds a remove and an add), and deletes
// of previously added IDs. Deletes and replacements always follow their
// add within the same shard's stream, mirroring the retriever's
// shard-affine writes.
func genStatsOps(rng *rand.Rand, shard, n int) []statsOp {
	vocab := []string{
		"river", "nitrate", "station", "turbine", "freight", "manifest",
		"rainfall", "sensor", "basin", "portfolio", "yield", "potassium",
	}
	text := func() string {
		words := make([]byte, 0, 64)
		for i, k := 0, 2+rng.Intn(7); i < k; i++ {
			if len(words) > 0 {
				words = append(words, ' ')
			}
			words = append(words, vocab[rng.Intn(len(vocab))]...)
		}
		return string(words)
	}
	ops := make([]statsOp, 0, n)
	var live []string
	next := 0
	for len(ops) < n {
		switch {
		case len(live) > 4 && rng.Intn(4) == 0:
			k := rng.Intn(len(live))
			ops = append(ops, statsOp{id: live[k], del: true})
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		case len(live) > 2 && rng.Intn(5) == 0:
			// Replacement: re-add a live ID with different text.
			ops = append(ops, statsOp{id: live[rng.Intn(len(live))], text: text()})
		default:
			id := fmt.Sprintf("s%d-doc%d", shard, next)
			next++
			ops = append(ops, statsOp{id: id, text: text()})
			live = append(live, id)
		}
	}
	return ops
}

// applyStatsOps plays one shard's stream into its index (all indexes
// share one Stats object).
func applyStatsOps(ix *Index, ops []statsOp, yield *rand.Rand) {
	for _, o := range ops {
		if o.del {
			ix.Delete(o.id)
		} else {
			ix.Add(o.id, o.text)
		}
		if yield != nil && yield.Intn(3) == 0 {
			runtime.Gosched()
		}
	}
}

// statsFingerprint reduces a Stats object to a comparable string:
// docCount, totalLen and the full per-term document-frequency map in
// sorted term order. It reads the raw fields (same package) so the
// comparison covers every stemmed term actually folded in, then
// cross-checks the batched QueryStats snapshot the query path uses
// against the raw values.
func statsFingerprint(t *testing.T, s *Stats) string {
	t.Helper()
	s.mu.RLock()
	terms := make([]string, 0, len(s.df))
	for term := range s.df {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d len=%d", s.docCount, s.totalLen)
	for _, term := range terms {
		fmt.Fprintf(&b, " %s=%d", term, s.df[term])
	}
	s.mu.RUnlock()

	df := make([]int32, len(terms))
	n, avg := s.QueryStats(terms, df)
	for i, term := range terms {
		if int(df[i]) != s.DocFreq(term) {
			t.Fatalf("QueryStats df[%q] = %d, DocFreq = %d", term, df[i], s.DocFreq(term))
		}
	}
	if n != s.DocCount() || avg != s.AvgDocLen() {
		t.Fatalf("QueryStats (%d, %v) disagrees with (%d, %v)", n, avg, s.DocCount(), s.AvgDocLen())
	}
	return b.String()
}

// TestStatsCommutativity is the property test: for randomized per-shard
// operation streams, every concurrent interleaving of the shard writers
// and every sequential shard order must fold to identical corpus
// statistics.
func TestStatsCommutativity(t *testing.T) {
	const shards = 8
	opsPerShard := 120
	trials := 12
	if testing.Short() {
		opsPerShard = 60
		trials = 6
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			streams := make([][]statsOp, shards)
			for s := range streams {
				streams[s] = genStatsOps(rng, s, opsPerShard)
			}

			// Sequential baseline, shards in order 0..7.
			want := NewStats()
			for s := 0; s < shards; s++ {
				applyStatsOps(NewWithStats(Params{}, want), streams[s], nil)
			}
			wantFP := statsFingerprint(t, want)

			// Same streams, shards folded in reverse order: commutativity
			// across whole streams.
			rev := NewStats()
			for s := shards - 1; s >= 0; s-- {
				applyStatsOps(NewWithStats(Params{}, rev), streams[s], nil)
			}
			if got := statsFingerprint(t, rev); got != wantFP {
				t.Fatalf("reverse shard order diverged:\n got %s\nwant %s", got, wantFP)
			}

			// Concurrent trials: shard goroutines interleave op by op
			// (Gosched calls shake the schedule), and every trial must
			// converge to the sequential fingerprint.
			for trial := 0; trial < trials; trial++ {
				st := NewStats()
				var wg sync.WaitGroup
				for s := 0; s < shards; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						yield := rand.New(rand.NewSource(seed*1000 + int64(trial*shards+s)))
						applyStatsOps(NewWithStats(Params{}, st), streams[s], yield)
					}(s)
				}
				wg.Wait()
				if got := statsFingerprint(t, st); got != wantFP {
					t.Fatalf("trial %d diverged:\n got %s\nwant %s", trial, got, wantFP)
				}
			}
		})
	}
}
