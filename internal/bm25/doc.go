// Package bm25 implements an Okapi BM25 inverted index (Robertson &
// Zaragoza 2009), the lexical half of Pneuma-Retriever's hybrid index and
// the engine behind the FTS baseline.
//
// Documents are added incrementally with Index.Add and tombstoned by
// Index.Delete; scoring uses the standard BM25 term weighting with the
// "plus 1" IDF variant so that terms present in more than half the corpus
// never receive negative weight.
//
// # Global statistics for sharded deployments
//
// BM25 scores depend on corpus-wide statistics: the document count N, the
// average document length avgdl, and per-term document frequencies. When a
// corpus is hash-partitioned across shard indexes, each shard's local
// statistics drift from the global ones — badly so on small corpora — and
// per-shard scores stop being comparable to a single index's. NewWithStats
// solves this: every shard contributes its documents to one shared Stats
// object and scores queries against it, so a document's BM25 score is
// bit-identical to the score a monolithic index over the whole corpus
// would assign. Stats updates are commutative (incremental add/remove, no
// rescans), which preserves the determinism contract of the sharded
// retriever: the final statistics after a concurrent bulk ingest do not
// depend on goroutine interleaving.
//
// # Query-path allocation discipline
//
// Search accumulates scores in a pooled dense array indexed by document
// slot (epoch-stamped, so recycled scratch needs no zeroing), caches each
// touched document's length norm once per query, deduplicates query terms
// by sorting the token slice in place, reads document frequencies from
// incrementally maintained counters instead of scanning posting lists for
// tombstones, and selects the top k with a bounded heap rather than
// sorting every scored document. Steady-state queries allocate only the
// tokenizer output and the returned result slice; the committed ceiling is
// enforced by an AllocsPerRun test. The usual sync.Pool caveat applies: a
// GC cycle may drop the pooled scratch, so the first query after a
// collection re-grows it.
//
// # Lock-free reads under mutation
//
// Queries never take the writer lock: all read-path state lives in an
// immutable view published behind one atomic pointer, which Search pins
// with a single load (the same epoch/RCU discipline as package hnsw —
// see its doc.go for the lifecycle). Writers, serialized by a mutex
// readers never touch, open a batch as a shallow copy of the view and
// publish it in one atomic swap. A batch's cost is O(its documents),
// not O(the index): the term→slot table is an insert-only sync.Map
// shared by every view of a slot lineage (each view bounds lookups by
// its own slot count, so later batches' terms stay invisible to it),
// and posting lists grow behind stable per-term atomically published
// headers, trimmed per view by document index — postings are appended
// in document order, so a view's visible postings are exactly the
// prefix inside its own document table. Only slot-reassigning rebuilds
// (Compact, a snapshot restore) start a fresh lineage.
//
// # Serialization
//
// WriteTo/ReadFrom serialize the index state as one binary section: the
// document table plus the postings map stored term-wise, from which the
// restore rebuilds the inverted index with arena-backed posting lists and
// per-document term-frequency windows — no re-tokenization, one map
// insert per distinct term. A shared Stats object is never serialized:
// its updates are commutative, so each restored shard folds its live
// aggregate back in (immediately when the Stats is already attached, or
// deferred via DeferStats/AttachStats so a multi-section snapshot can
// fully validate before any shared state is touched). Compact returns a
// tombstone-free copy — the state a replay of a compacted segment log
// would build — without touching the shared Stats.
//
// All types in this package are safe for concurrent use.
package bm25
