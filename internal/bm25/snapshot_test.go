package bm25

import (
	"bytes"
	"fmt"
	"testing"
)

// corpusDocs is a small deterministic corpus with vocabulary overlap.
func corpusDocs(n int) []struct{ id, text string } {
	subjects := []string{"rainfall station", "freight manifest", "turbine output",
		"warehouse stock", "portfolio yield", "soil potassium"}
	out := make([]struct{ id, text string }, n)
	for i := range out {
		out[i].id = fmt.Sprintf("d%03d", i)
		out[i].text = fmt.Sprintf("%s readings series %d with shared vocabulary terms and %s",
			subjects[i%len(subjects)], i, subjects[(i+1)%len(subjects)])
	}
	return out
}

// assertSameSearch requires two indexes to agree exactly on a query set.
func assertSameSearch(t *testing.T, a, b *Index) {
	t.Helper()
	for _, q := range []string{"rainfall station readings", "freight manifest", "potassium",
		"shared vocabulary terms", "turbine warehouse"} {
		ra := a.Search(q, 10)
		rb := b.Search(q, 10)
		if len(ra) != len(rb) {
			t.Fatalf("%q: %d vs %d results", q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%q rank %d: %+v vs %+v", q, i, ra[i], rb[i])
			}
		}
	}
}

// TestSnapshotRoundTripLocal serializes an index (with tombstones and a
// replaced document) scoring against local statistics and restores it:
// searches, live counts and further mutations must match exactly.
func TestSnapshotRoundTripLocal(t *testing.T) {
	orig := New(Params{})
	for _, d := range corpusDocs(40) {
		orig.Add(d.id, d.text)
	}
	orig.Delete("d003")
	orig.Delete("d010")
	orig.Add("d005", "replacement text about rainfall and yield")

	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(Params{})
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), orig.Len())
	}
	assertSameSearch(t, orig, restored)

	// Mutations after the restore must track exactly too (df counters,
	// postings windows, tombstone bookkeeping).
	for _, ix := range []*Index{orig, restored} {
		ix.Delete("d007")
		ix.Add("d100", "fresh post-restore document about turbine output readings")
	}
	assertSameSearch(t, orig, restored)
}

// TestSnapshotRoundTripSharedStats restores two serialized shard indexes
// against one fresh Stats object (via the deferred-attach path the
// retriever uses) and requires scores identical to the live shards.
func TestSnapshotRoundTripSharedStats(t *testing.T) {
	st := NewStats()
	shards := []*Index{NewWithStats(Params{}, st), NewWithStats(Params{}, st)}
	for i, d := range corpusDocs(30) {
		shards[i%2].Add(d.id, d.text)
	}
	shards[0].Delete("d004")

	st2 := NewStats()
	restored := make([]*Index, 2)
	for i, ix := range shards {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		re := New(Params{})
		re.DeferStats()
		if _, err := re.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		re.AttachStats(st2)
		restored[i] = re
	}
	if st2.DocCount() != st.DocCount() || st2.AvgDocLen() != st.AvgDocLen() {
		t.Fatalf("restored stats (%d, %v) != live stats (%d, %v)",
			st2.DocCount(), st2.AvgDocLen(), st.DocCount(), st.AvgDocLen())
	}
	for i := range shards {
		assertSameSearch(t, shards[i], restored[i])
	}
}

// TestSnapshotErrors covers the refusal paths: restore into a non-empty
// index and truncated input, both leaving the index and shared stats
// untouched.
func TestSnapshotErrorsBM25(t *testing.T) {
	orig := New(Params{})
	for _, d := range corpusDocs(20) {
		orig.Add(d.id, d.text)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	nonEmpty := New(Params{})
	nonEmpty.Add("x", "already populated")
	if _, err := nonEmpty.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadFrom into non-empty index succeeded")
	}

	st := NewStats()
	truncated := NewWithStats(Params{}, st)
	if _, err := truncated.ReadFrom(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("ReadFrom of truncated section succeeded")
	}
	if truncated.Len() != 0 || st.DocCount() != 0 {
		t.Fatalf("failed restore leaked state: Len=%d stats=%d", truncated.Len(), st.DocCount())
	}
}

// TestCompact verifies the in-place compaction: identical search results,
// live-only document table, and untouched shared statistics.
func TestCompact(t *testing.T) {
	st := NewStats()
	ix := NewWithStats(Params{}, st)
	for _, d := range corpusDocs(30) {
		ix.Add(d.id, d.text)
	}
	for i := 0; i < 15; i++ {
		ix.Delete(fmt.Sprintf("d%03d", i*2))
	}
	beforeDocs, beforeLen := st.DocCount(), st.AvgDocLen()
	liveBefore := ix.Len()
	queries := []string{"rainfall station readings", "freight manifest", "potassium",
		"shared vocabulary terms", "turbine warehouse"}
	before := make([][]Result, len(queries))
	for i, q := range queries {
		before[i] = ix.Search(q, 10)
	}

	ix.Compact()
	if st.DocCount() != beforeDocs || st.AvgDocLen() != beforeLen {
		t.Fatal("Compact mutated the shared stats")
	}
	if ix.Len() != liveBefore {
		t.Fatalf("compacted Len = %d, want %d", ix.Len(), liveBefore)
	}
	if v := ix.view.Load(); len(v.docs) != liveBefore {
		t.Fatalf("compacted doc table has %d slots for %d live docs", len(v.docs), liveBefore)
	}
	for i, q := range queries {
		after := ix.Search(q, 10)
		if len(after) != len(before[i]) {
			t.Fatalf("%q: %d vs %d results after compaction", q, len(before[i]), len(after))
		}
		for j := range after {
			if after[j] != before[i][j] {
				t.Fatalf("%q rank %d: %+v vs %+v after compaction", q, j, before[i][j], after[j])
			}
		}
	}
	// Compaction must stay transparent to later mutations too.
	ix.Add("d900", "fresh turbine output readings after compaction")
	if res := ix.Search("turbine output", 5); len(res) == 0 {
		t.Fatal("post-compaction add not searchable")
	}
}
