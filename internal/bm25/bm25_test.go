package bm25

import (
	"fmt"
	"testing"
)

func docCorpus() *Index {
	ix := New(Params{})
	ix.Add("proc", "procurement records purchases suppliers items prices countries")
	ix.Add("tariff", "tariff schedule rates countries imports duty percentages")
	ix.Add("hr", "employees salaries departments hiring")
	ix.Add("potassium", "potassium ppm soil samples chemical measurements malta")
	return ix
}

func TestBasicRanking(t *testing.T) {
	ix := docCorpus()
	res := ix.Search("tariff rates for imports", 4)
	if len(res) == 0 || res[0].ID != "tariff" {
		t.Fatalf("top hit = %v, want tariff", res)
	}
}

func TestNoMatchReturnsNothing(t *testing.T) {
	ix := docCorpus()
	if res := ix.Search("zebra xylophone", 5); len(res) != 0 {
		t.Fatalf("unrelated query matched %v", res)
	}
	if res := ix.Search("", 5); len(res) != 0 {
		t.Fatalf("empty query matched %v", res)
	}
	if res := ix.Search("tariff", 0); len(res) != 0 {
		t.Fatalf("k=0 returned %v", res)
	}
}

func TestTermFrequencySaturation(t *testing.T) {
	ix := New(Params{})
	ix.Add("a", "apple apple apple apple apple apple apple apple")
	ix.Add("b", "apple banana")
	res := ix.Search("apple", 2)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	// Doc a must rank first (higher tf), but not 8x higher (saturation).
	if res[0].ID != "a" {
		t.Fatalf("top = %v, want a", res[0])
	}
	if res[0].Score > res[1].Score*4 {
		t.Errorf("tf saturation too weak: %v vs %v", res[0].Score, res[1].Score)
	}
}

func TestIDFWeighting(t *testing.T) {
	ix := New(Params{})
	// "common" appears everywhere; "rare" once.
	for i := 0; i < 10; i++ {
		ix.Add(fmt.Sprintf("d%d", i), "common words here")
	}
	ix.Add("special", "common rare words")
	res := ix.Search("rare", 3)
	if len(res) != 1 || res[0].ID != "special" {
		t.Fatalf("rare-term query: %v", res)
	}
}

func TestDeleteAndReplace(t *testing.T) {
	ix := docCorpus()
	if !ix.Delete("tariff") {
		t.Fatal("delete failed")
	}
	if ix.Delete("tariff") {
		t.Fatal("double delete should be false")
	}
	for _, r := range ix.Search("tariff", 5) {
		if r.ID == "tariff" {
			t.Fatal("deleted doc surfaced")
		}
	}
	// Replace a doc.
	ix.Add("hr", "holiday schedule vacations")
	res := ix.Search("salaries", 5)
	for _, r := range res {
		if r.ID == "hr" {
			t.Fatal("stale content matched after replace")
		}
	}
	res = ix.Search("vacations", 5)
	if len(res) != 1 || res[0].ID != "hr" {
		t.Fatalf("replacement content not searchable: %v", res)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (4 docs, 1 deleted, 1 replaced in place)", ix.Len())
	}
}

func TestTopKBound(t *testing.T) {
	ix := New(Params{})
	for i := 0; i < 50; i++ {
		ix.Add(fmt.Sprintf("d%d", i), "shared token corpus")
	}
	res := ix.Search("shared corpus", 7)
	if len(res) != 7 {
		t.Fatalf("topk = %d, want 7", len(res))
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := New(Params{})
	ix.Add("b", "same words")
	ix.Add("a", "same words")
	res := ix.Search("same words", 2)
	if res[0].ID != "a" || res[1].ID != "b" {
		t.Fatalf("ties must break by ID: %v", res)
	}
}

func TestStemmedMatching(t *testing.T) {
	ix := New(Params{})
	ix.Add("d", "recorded samples from studies")
	if res := ix.Search("record sample study", 1); len(res) != 1 {
		t.Fatalf("stemmed query failed: %v", res)
	}
}

func TestVocabulary(t *testing.T) {
	ix := New(Params{})
	ix.Add("a", "one two three")
	if v := ix.Vocabulary(); v != 3 {
		t.Fatalf("vocab = %d, want 3", v)
	}
}
