package bm25

import (
	"fmt"
	"math"
	"testing"
)

// statsDocs is a tiny corpus with skewed term distribution, so per-shard
// statistics would diverge hard from the global ones.
func statsDocs() []struct{ id, text string } {
	out := []struct{ id, text string }{
		{"d0", "tariff schedule for imported steel and aluminum"},
		{"d1", "soil potassium concentration in malta region"},
		{"d2", "rainfall station readings for malta"},
		{"d3", "steel warehouse inventory and reorder levels"},
		{"d4", "vessel gross tonnage registry"},
		{"d5", "portfolio bond yield and maturity dates"},
	}
	for i := 0; i < 10; i++ {
		out = append(out, struct{ id, text string }{
			fmt.Sprintf("pad%d", i),
			fmt.Sprintf("filler document number %d about miscellaneous records", i),
		})
	}
	return out
}

// TestSharedStatsMatchSingleIndex splits a corpus across two indexes
// sharing one Stats object and requires every document's score to equal
// the score a single combined index assigns.
func TestSharedStatsMatchSingleIndex(t *testing.T) {
	docs := statsDocs()
	single := New(Params{})
	st := NewStats()
	shards := []*Index{NewWithStats(Params{}, st), NewWithStats(Params{}, st)}
	for i, d := range docs {
		single.Add(d.id, d.text)
		shards[i%2].Add(d.id, d.text)
	}

	for _, q := range []string{"steel", "malta rainfall", "potassium concentration", "records"} {
		want := map[string]float64{}
		for _, r := range single.Search(q, 100) {
			want[r.ID] = r.Score
		}
		got := map[string]float64{}
		for _, sh := range shards {
			for _, r := range sh.Search(q, 100) {
				got[r.ID] = r.Score
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%q: hit sets differ: %v vs %v", q, got, want)
		}
		for id, w := range want {
			if g, ok := got[id]; !ok || math.Abs(g-w) > 1e-12 {
				t.Fatalf("%q doc %s: sharded score %v, single-index score %v", q, id, g, w)
			}
		}
	}
}

// TestStatsDeleteAndReplace verifies Delete and re-Add keep the shared
// statistics exact.
func TestStatsDeleteAndReplace(t *testing.T) {
	st := NewStats()
	ix := NewWithStats(Params{}, st)
	ix.Add("a", "alpha beta gamma")
	ix.Add("b", "alpha delta")
	if st.DocCount() != 2 || st.DocFreq("alpha") != 2 || st.DocFreq("beta") != 1 {
		t.Fatalf("after adds: docs=%d df(alpha)=%d df(beta)=%d",
			st.DocCount(), st.DocFreq("alpha"), st.DocFreq("beta"))
	}
	// Replacement swaps the old contribution for the new one.
	ix.Add("a", "epsilon zeta")
	if st.DocCount() != 2 || st.DocFreq("alpha") != 1 || st.DocFreq("beta") != 0 || st.DocFreq("epsilon") != 1 {
		t.Fatalf("after replace: docs=%d df(alpha)=%d df(beta)=%d df(epsilon)=%d",
			st.DocCount(), st.DocFreq("alpha"), st.DocFreq("beta"), st.DocFreq("epsilon"))
	}
	if !ix.Delete("b") {
		t.Fatal("delete failed")
	}
	if st.DocCount() != 1 || st.DocFreq("alpha") != 0 || st.DocFreq("delta") != 0 {
		t.Fatalf("after delete: docs=%d df(alpha)=%d df(delta)=%d",
			st.DocCount(), st.DocFreq("alpha"), st.DocFreq("delta"))
	}
	if st.AvgDocLen() != 2 {
		t.Fatalf("avgdl = %v, want 2", st.AvgDocLen())
	}
}
