package bm25

import "sync"

// Stats holds corpus-wide BM25 statistics — document count, total token
// length (for avgdl) and per-term document frequencies — shared by a set of
// shard-partitioned indexes. When every shard of a partitioned index scores
// against the same Stats object, a document receives exactly the score it
// would receive in one monolithic index over the whole corpus, so sharded
// ranking is identical to single-index ranking even on corpora small enough
// that per-shard statistics would diverge badly from the global ones.
//
// Stats is updated incrementally by the owning indexes on Add and Delete
// (including re-Add replacement), never recomputed by scanning, so all
// updates are commutative: the final state after a bulk ingest is
// independent of the order shard goroutines interleave in. All methods are
// safe for concurrent use.
type Stats struct {
	mu       sync.RWMutex
	docCount int
	totalLen int
	df       map[string]int
}

// NewStats creates an empty corpus-statistics object.
func NewStats() *Stats {
	return &Stats{df: make(map[string]int)}
}

// addDoc folds one document's distinct-term frequencies and token length
// into the corpus statistics.
func (s *Stats) addDoc(tf []termFreq, length int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docCount++
	s.totalLen += length
	for _, e := range tf {
		s.df[e.term]++
	}
}

// addAggregate folds a whole shard's live aggregate — document count,
// total token length and per-term live document frequencies — into the
// corpus statistics in one pass. Equivalent to calling addDoc for every
// live document, but with one map operation per distinct term instead of
// one per (document, term) pair; the snapshot loader uses it to make bulk
// restores cheap.
func (s *Stats) addAggregate(agg []termFreq, docCount, totalLen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.df) == 0 && len(agg) > 0 {
		// First fold into an empty corpus: re-make the map with room for
		// this shard and its siblings (shard vocabularies are largely
		// disjoint on value-heavy corpora, so the union approaches the
		// sum), instead of rehashing it up from nothing term by term.
		s.df = make(map[string]int, 4*len(agg))
	}
	s.docCount += docCount
	s.totalLen += totalLen
	for _, e := range agg {
		s.df[e.term] += e.tf
	}
}

// removeDoc reverses addDoc for a deleted or replaced document.
func (s *Stats) removeDoc(tf []termFreq, length int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docCount--
	s.totalLen -= length
	for _, e := range tf {
		if s.df[e.term] > 1 {
			s.df[e.term]--
		} else {
			delete(s.df, e.term)
		}
	}
}

// DocCount returns the number of live documents across all owning indexes.
func (s *Stats) DocCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docCount
}

// AvgDocLen returns the corpus-wide average document length in tokens
// (1 when the corpus is empty or all-empty, so scoring never divides by
// zero).
func (s *Stats) AvgDocLen() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.docCount == 0 || s.totalLen == 0 {
		return 1
	}
	return float64(s.totalLen) / float64(s.docCount)
}

// DocFreq returns the number of live documents containing term.
func (s *Stats) DocFreq(term string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.df[term]
}

// QueryStats snapshots everything one query needs — the corpus document
// count, the average document length, and the document frequency of every
// term in terms (written into df, which must have len(terms)) — under a
// single lock acquisition. Scoring a query from one coherent snapshot
// instead of per-term DocFreq calls both shortens the read-side critical
// sections under concurrent ingest and keeps all of a query's frequencies
// from one quiesce point.
func (s *Stats) QueryStats(terms []string, df []int32) (docCount int, avgDocLen float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, t := range terms {
		df[i] = int32(s.df[t])
	}
	avgDocLen = 1
	if s.docCount > 0 && s.totalLen > 0 {
		avgDocLen = float64(s.totalLen) / float64(s.docCount)
	}
	return s.docCount, avgDocLen
}
