package bm25

import (
	"fmt"
	"io"
	"sort"

	"pneuma/internal/wire"
)

// WriteTo serializes the index state as one length-prefixed binary
// section, implementing io.WriterTo: the document table (per document:
// external ID, token length, tombstone flag, distinct-term count) followed
// by the postings map, term-wise — each term once, with its (document
// slot, term frequency) list. Storing postings term-wise rather than
// repeating term strings per document keeps the section compact and lets
// ReadFrom rebuild the inverted index with one arena allocation instead of
// tens of thousands of list growths. Terms are written in sorted order,
// making the serialized bytes deterministic for a fixed index state.
//
// Serialization runs against the view current at call time, concurrent
// with readers and without blocking writers; callers that need a
// particular quiesce point (the retriever's snapshot writer) serialize
// their own writers around the call.
//
// The shared corpus Stats object (NewWithStats) is not serialized: its
// updates are commutative, so each restored shard re-contributes its live
// documents' aggregate on ReadFrom and the shared totals converge to the
// same values regardless of shard restore order.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	v := ix.view.Load()

	var body wire.Writer
	body.Uvarint(uint64(len(v.docs)))
	for i := range v.docs {
		d := &v.docs[i]
		body.String(d.id)
		body.Uvarint(uint64(d.length))
		if d.deleted {
			body.Byte(1)
		} else {
			body.Byte(0)
		}
		body.Uvarint(uint64(len(d.tf)))
	}
	// The term table is shared with newer views; forEach bounds the walk
	// to this view's slots, so terms interned by concurrent writer batches
	// never leak into the section.
	terms := make([]string, 0, len(v.plists))
	slots := make(map[string]int32, len(v.plists))
	total := 0
	v.terms.forEach(len(v.plists), func(t string, slot int32) {
		terms = append(terms, t)
		slots[t] = slot
		// v.postings trims to the view's document range, so postings
		// appended by concurrent writer batches never leak into the
		// section — and the trim bound is fixed by the view, so this
		// count and the emission pass below see identical prefixes.
		total += len(v.postings(slot))
	})
	sort.Strings(terms)
	body.Uvarint(uint64(len(terms)))
	body.Uvarint(uint64(total))
	for _, t := range terms {
		body.String(t)
		plist := v.postings(slots[t])
		body.Uvarint(uint64(len(plist)))
		for _, p := range plist {
			body.Uvarint(uint64(p.doc))
			body.Uvarint(uint64(p.tf))
		}
	}

	var head wire.Writer
	head.Uvarint(uint64(body.Len()))
	if _, err := w.Write(head.Bytes()); err != nil {
		return 0, err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return int64(head.Len()), err
	}
	return int64(head.Len() + body.Len()), nil
}

// ReadFrom restores state serialized by WriteTo into an empty index,
// implementing io.ReaderFrom. Posting lists are rebuilt as capacity-
// limited windows into a single arena (a later Add copies-on-append, so
// the windows stay immutable), the per-document term-frequency slices that
// Delete needs are reconstituted from the postings, and the live
// document-frequency counters fall out of the same pass. When a shared
// Stats object is attached, the restored live documents' aggregate —
// document count, total length, per-term live frequencies — is
// contributed to it at the end, exactly matching a replay of the original
// Add sequence. A malformed or truncated section leaves the index and the
// shared Stats unchanged and returns an error.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.view.Load().docs) != 0 {
		return 0, fmt.Errorf("bm25: ReadFrom into non-empty index")
	}

	br := wire.AsByteScanner(r)
	var read int64
	size, err := wire.ReadUvarint(br, &read)
	if err != nil {
		return read, fmt.Errorf("bm25: snapshot section header: %w", err)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(br, buf); err != nil {
		return read, fmt.Errorf("bm25: snapshot section body: %w", err)
	}
	read += int64(size)

	// The section buffer is owned by the structures built from it, so
	// strings decode as zero-copy views (wire.NewSharedReader).
	return read, ix.readBody(wire.NewSharedReader(buf))
}

// ReadFromShared restores state serialized by WriteTo by parsing the
// length-prefixed section in place from a shared wire.Reader — no section
// copy, and every term and document ID decodes as a zero-copy view of the
// reader's buffer. This is the bulk-load path for snapshot opens, where
// the buffer (a read file or an mmap'd snapshot) is owned by the
// structures built from it: skipping the section copy removes the largest
// single heap allocation of an open, which both shortens the open and
// shrinks the garbage the collector scans while it runs. Semantics
// otherwise match ReadFrom.
func (ix *Index) ReadFromShared(rd *wire.Reader) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.view.Load().docs) != 0 {
		return fmt.Errorf("bm25: ReadFrom into non-empty index")
	}
	size := int(rd.Uvarint())
	sec := rd.Section(size)
	if err := rd.Err(); err != nil {
		return fmt.Errorf("bm25: snapshot section header: %w", err)
	}
	return ix.readBody(sec)
}

// readBody parses a WriteTo section body and commits it by publishing a
// fresh view (mu held, index empty). The reader must span exactly the
// section body and be in shared mode: strings are retained as decoded.
func (ix *Index) readBody(rd *wire.Reader) error {
	cur := ix.view.Load()
	secLen := rd.Remaining()
	ndocs := int(rd.Uvarint())
	// Every document costs at least a few bytes, so a count exceeding the
	// section size is malformed — reject before allocating for it.
	if ndocs < 0 || ndocs > secLen {
		return fmt.Errorf("bm25: snapshot section claims %d docs in %d bytes", ndocs, secLen)
	}
	docs := make([]docInfo, ndocs)
	// offs are per-document windows into the term-frequency arena, sized
	// from the stored distinct-term counts; the postings pass below fills
	// them in sorted-term order, restoring the docInfo.tf invariant.
	offs := make([]int32, ndocs+1)
	for i := range docs {
		docs[i].id = rd.String()
		docs[i].length = int(rd.Uvarint())
		docs[i].deleted = rd.Byte() != 0
		nt := int(rd.Uvarint())
		if nt < 0 || nt > secLen {
			return fmt.Errorf("bm25: snapshot doc %d claims %d terms", i, nt)
		}
		offs[i+1] = offs[i] + int32(nt)
	}
	nterms := int(rd.Uvarint())
	total := int(rd.Uvarint())
	if nterms < 0 || nterms > rd.Remaining() || total < 0 || total > rd.Remaining() {
		return fmt.Errorf("bm25: snapshot section claims %d terms / %d postings in %d bytes",
			nterms, total, rd.Remaining())
	}
	if int(offs[ndocs]) != total {
		return fmt.Errorf("bm25: snapshot section: %d per-doc terms vs %d postings", offs[ndocs], total)
	}
	// A restore assigns slots from scratch, so it starts a fresh term-table
	// lineage rather than reusing the empty index's table.
	terms := newTermTable()
	plists := make([]*termPostings, 0, nterms)
	// The live document-frequency aggregate accumulates as a slice (terms
	// arrive sorted); whether it becomes a local df slice, a shared-Stats
	// contribution or a parked pending aggregate is decided at commit.
	agg := make([]termFreq, 0, nterms)
	var df []int32
	if cur.stats == nil && !ix.deferStats {
		df = make([]int32, 0, nterms)
	}
	arena := make([]posting, 0, total)
	tfArena := make([]termFreq, total)
	fill := make([]int32, ndocs)
	for i := 0; i < nterms && rd.Err() == nil; i++ {
		term := rd.String()
		np := int(rd.Uvarint())
		if np < 0 || np > total-len(arena) {
			return fmt.Errorf("bm25: snapshot term %q claims %d postings", term, np)
		}
		start := len(arena)
		live := 0
		for j := 0; j < np; j++ {
			doc := int(rd.Uvarint())
			tf := int(rd.Uvarint())
			if doc < 0 || doc >= ndocs || tf <= 0 {
				return fmt.Errorf("bm25: snapshot term %q has invalid posting (doc %d, tf %d)", term, doc, tf)
			}
			if offs[doc]+fill[doc] >= offs[doc+1] {
				return fmt.Errorf("bm25: snapshot doc %d has more postings than declared terms", doc)
			}
			arena = append(arena, posting{doc: doc, tf: tf})
			tfArena[offs[doc]+fill[doc]] = termFreq{term: term, tf: tf}
			fill[doc]++
			if !docs[doc].deleted {
				live++
			}
		}
		// Capacity-limited window: appending to this term's list later
		// reallocates instead of stomping the next term's postings.
		terms.intern(term, int32(len(plists)))
		tp := &termPostings{}
		window := arena[start:len(arena):len(arena)]
		tp.data.Store(&window)
		plists = append(plists, tp)
		if df != nil {
			df = append(df, int32(live))
		}
		if live > 0 {
			agg = append(agg, termFreq{term: term, tf: live})
		}
	}
	if err := rd.Err(); err != nil {
		return fmt.Errorf("bm25: snapshot section: %w", err)
	}
	if len(arena) != total {
		return fmt.Errorf("bm25: snapshot section has %d postings, declared %d", len(arena), total)
	}
	for i := range docs {
		docs[i].tf = tfArena[offs[i]:offs[i+1]:offs[i+1]]
	}

	// Commit: build the restored view and publish it in one swap.
	v := &lexView{terms: terms, plists: plists, docs: docs, df: df, stats: cur.stats}
	byID := make(map[string]int, ndocs)
	for slot := range docs {
		d := &docs[slot]
		if d.deleted {
			continue
		}
		byID[d.id] = slot
		v.totalLen += d.length
		v.liveDocs++
	}
	ix.byID = byID
	switch {
	case v.stats != nil:
		v.stats.addAggregate(agg, v.liveDocs, v.totalLen)
	case ix.deferStats:
		ix.pendingAgg = agg
	}
	ix.view.Store(v)
	return nil
}

// DeferStats marks an empty index for a two-phase restore: a following
// ReadFrom parks the live document-frequency aggregate instead of
// materializing the local df slice, and AttachStats later folds it
// straight into the shared Stats object. The index scores no results until
// AttachStats is called (it has neither local nor shared statistics); the
// snapshot loader uses this to both defer shared-state mutation until the
// whole snapshot validates and to skip building throwaway local counters
// per shard.
func (ix *Index) DeferStats() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.deferStats = true
}

// AttachStats connects an index built against its own local statistics to
// a shared corpus Stats object: the live documents' aggregate (document
// count, total token length, per-term live document frequencies) is
// contributed to st and the local counters are dropped, after which the
// index scores exactly as if it had been created with NewWithStats. The
// snapshot loader uses this to defer shared-state mutation until an
// entire multi-section snapshot has validated — a half-parsed snapshot
// must never leave its document frequencies behind in the corpus totals.
// Calling it on an index that already has a Stats attached is a no-op.
func (ix *Index) AttachStats(st *Stats) {
	if st == nil {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cur := ix.view.Load()
	if cur.stats != nil {
		return
	}
	if ix.pendingAgg != nil {
		// Deferred restore: the parked aggregate folds straight in.
		st.addAggregate(ix.pendingAgg, cur.liveDocs, cur.totalLen)
		ix.pendingAgg = nil
	} else {
		// The local df slice is by construction exactly the live
		// documents' per-term aggregate, so it folds into the shared
		// totals in one pass.
		agg := make([]termFreq, 0, len(cur.df))
		cur.terms.forEach(len(cur.plists), func(term string, slot int32) {
			if n := cur.df[slot]; n > 0 {
				agg = append(agg, termFreq{term: term, tf: int(n)})
			}
		})
		st.addAggregate(agg, cur.liveDocs, cur.totalLen)
	}
	v := *cur
	v.stats = st
	v.df = nil
	ix.deferStats = false
	ix.view.Store(&v)
}

// Compact rebuilds the index in place to hold only the live documents, in
// their original relative order, scoring against the same shared Stats
// object (which is left untouched: the live documents' contributions are
// identical before and after). The result is exactly the index that
// re-adding the surviving documents to a fresh NewWithStats index would
// build — the state segment compaction needs after rewriting a log to its
// live records. Readers are never blocked: they keep serving from the old
// view until the rebuilt one is published with one atomic swap. The
// term-frequency slices are shared with the old view (both are
// immutable).
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.view.Load()
	ix.batch++
	// Compaction reassigns slots, so it starts a fresh term-table lineage;
	// readers still on the old view keep the old table, whose slots keep
	// their old meaning.
	v := &lexView{terms: newTermTable(), stats: old.stats}
	if old.stats == nil {
		v.df = []int32{}
	}
	byID := make(map[string]int, old.liveDocs)
	// Lists accumulate as plain slices (the fresh table means every lookup
	// hit is in range) and are wrapped in their atomic headers only once,
	// at the end — nothing reads the rebuilt view before the publish swap.
	var lists [][]posting
	for i := range old.docs {
		d := &old.docs[i]
		if d.deleted {
			continue
		}
		slot := len(v.docs)
		v.docs = append(v.docs, docInfo{id: d.id, length: d.length, tf: d.tf})
		byID[d.id] = slot
		v.totalLen += d.length
		v.liveDocs++
		for _, e := range d.tf {
			ts, ok := v.terms.lookup(e.term)
			if !ok {
				ts = int32(len(lists))
				v.terms.intern(e.term, ts)
				lists = append(lists, nil)
				if v.df != nil {
					v.df = append(v.df, 0)
				}
			}
			lists[ts] = append(lists[ts], posting{doc: slot, tf: e.tf})
			if v.df != nil {
				v.df[ts]++
			}
		}
	}
	v.plists = make([]*termPostings, len(lists))
	for i := range lists {
		tp := &termPostings{}
		l := lists[i]
		tp.data.Store(&l)
		v.plists[i] = tp
	}
	ix.byID = byID
	ix.view.Store(v)
}

// AdoptFrom atomically replaces this index's contents with donor's: the
// published view and the writer state (ID map, batch stamps) move over.
// The donor is expected to be a shadow rebuilt in local-statistics mode
// over this index's live documents (background segment compaction builds
// it that way so the rebuild never touches the shared Stats object, whose
// counts already reflect exactly those documents). If this index scores
// against a shared Stats, the adopted view is re-pointed at it and the
// donor's local document-frequency slice is dropped — ranking is unchanged
// because the shared counts and the donor's local counts describe the same
// corpus. Readers are never blocked; the donor must not be used afterwards.
func (ix *Index) AdoptFrom(donor *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	donor.mu.Lock()
	defer donor.mu.Unlock()
	v := *donor.view.Load()
	if st := ix.view.Load().stats; st != nil {
		v.stats = st
		v.df = nil
	}
	ix.byID = donor.byID
	ix.batch = donor.batch
	ix.pubDocs = donor.pubDocs
	ix.docsBatch = donor.docsBatch
	ix.dfBatch = donor.dfBatch
	ix.publish(&v)
}
