package bm25

import (
	"fmt"
	"testing"
)

// allocIndex builds a 300-document index for the allocation and benchmark
// tests.
func allocIndex(tb testing.TB) *Index {
	tb.Helper()
	ix := New(Params{})
	for i := 0; i < 300; i++ {
		ix.Add(fmt.Sprintf("doc-%03d", i),
			fmt.Sprintf("river nitrate station sample %d measurement water quality basin sensor", i))
	}
	return ix
}

// searchAllocBudget is the committed per-query allocation ceiling for
// steady-state Search: query tokenization (token slice plus the
// per-token strings NormalizeTokens builds), the returned result slice,
// and headroom for the GC occasionally dropping the pooled scratch. A
// regression past this budget means the dense accumulator or the bounded
// top-k heap stopped being reused.
const searchAllocBudget = 16

func TestSearchAllocsWithinBudget(t *testing.T) {
	ix := allocIndex(t)
	for i := 0; i < 10; i++ {
		ix.Search("nitrate water quality", 10)
	}
	avg := testing.AllocsPerRun(200, func() {
		if got := ix.Search("nitrate water quality", 10); len(got) == 0 {
			t.Fatal("query must match")
		}
	})
	if avg > searchAllocBudget {
		t.Fatalf("steady-state Search allocates %.1f/op, budget is %d", avg, searchAllocBudget)
	}
}

// TestLiveDocFreqTracking pins the incremental document-frequency counters
// against the ground truth a posting-list scan would compute, across adds,
// deletes and replacements.
func TestLiveDocFreqTracking(t *testing.T) {
	ix := New(Params{})
	ix.Add("a", "nitrate river")
	ix.Add("b", "nitrate basin")
	ix.Add("c", "river basin")
	check := func(term string, want int) {
		t.Helper()
		v := ix.view.Load()
		got := 0
		if slot, ok := v.termSlot(term); ok {
			got = int(v.df[slot])
		}
		if got != want {
			t.Fatalf("df[%q] = %d, want %d", term, got, want)
		}
	}
	check("nitrate", 2)
	check("river", 2)
	ix.Delete("a")
	check("nitrate", 1)
	check("river", 1)
	ix.Add("b", "river only now") // replacement drops old terms
	check("nitrate", 0)
	check("basin", 1)
	check("river", 2)
}

func BenchmarkSearch(b *testing.B) {
	ix := allocIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ix.Search("nitrate water quality sensor", 10); len(got) == 0 {
			b.Fatal("query must match")
		}
	}
}
