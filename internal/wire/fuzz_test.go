package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReader throws arbitrary bytes at the Reader and walks an arbitrary
// decode sequence over them, in both owned and shared modes. The decoder
// sits under every persistence surface (segment records, snapshots, the
// hnsw/bm25 serializers), so the contract it must keep against hostile
// input is strict:
//
//   - no call ever panics or reads past the buffer (Remaining is never
//     negative and never grows);
//   - errors are sticky: once Err is non-nil it stays non-nil, and the
//     only error ever reported is ErrTruncated;
//   - length-prefixed values are bounded by the input (a crafted count
//     can never cause an allocation larger than the bytes backing it);
//   - Uvarint agrees with the streaming ReadUvarint whenever it succeeds.
func FuzzReader(f *testing.F) {
	// Seed with a buffer exercising every encoder, plus a script that
	// visits every decode op in order.
	var w Writer
	w.Byte(7)
	w.Uvarint(300)
	w.Varint(-5)
	w.U32(0xdeadbeef)
	w.U64(1 << 40)
	w.Float64(3.14)
	w.String("hello wire")
	w.Float32s([]float32{1, 2, 3})
	w.Float32Blob([]float32{4, 5})
	w.Int32Blob([]int32{-6, 7})
	w.Int8Blob([]int8{-8, 9})
	script := make([]byte, 0, 16)
	for op := byte(0); op < 16; op++ {
		script = append(script, op)
	}
	f.Add(script, append([]byte(nil), w.Bytes()...))
	f.Add([]byte{1, 1, 1, 1}, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Add([]byte{6, 7, 8}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{11, 0, 11}, []byte{})

	f.Fuzz(func(t *testing.T, script, data []byte) {
		for _, shared := range []bool{false, true} {
			var r *Reader
			if shared {
				r = NewSharedReader(data)
			} else {
				r = NewReader(data)
			}
			if r.Remaining() != len(data) {
				t.Fatalf("fresh reader Remaining = %d, want %d", r.Remaining(), len(data))
			}
			prev := r.Remaining()
			for _, op := range script {
				failedBefore := r.Err() != nil
				switch op % 16 {
				case 0:
					r.Byte()
				case 1:
					r.Uvarint()
				case 2:
					r.Varint()
				case 3:
					r.U32()
				case 4:
					r.U64()
				case 5:
					r.Float64()
				case 6:
					if s := r.String(); len(s) > len(data) {
						t.Fatalf("String longer than input: %d > %d", len(s), len(data))
					}
				case 7:
					if v := r.Float32s(); len(v)*4 > len(data) {
						t.Fatalf("Float32s longer than input: %d values in %d bytes", len(v), len(data))
					}
				case 8:
					if v := r.Float32Blob(); len(v)*4 > len(data) {
						t.Fatalf("Float32Blob longer than input: %d values in %d bytes", len(v), len(data))
					}
				case 9:
					if v := r.Int32Blob(); len(v)*4 > len(data) {
						t.Fatalf("Int32Blob longer than input: %d values in %d bytes", len(v), len(data))
					}
				case 10:
					if v := r.Int8Blob(); len(v) > len(data) {
						t.Fatalf("Int8Blob longer than input: %d values in %d bytes", len(v), len(data))
					}
				case 11:
					sub := r.Section(int(op))
					if sub.Remaining() > len(data) {
						t.Fatalf("Section wider than input: %d > %d", sub.Remaining(), len(data))
					}
					sub.Byte()
					sub.Uvarint()
					_ = sub.String()
					if sub.Remaining() < 0 {
						t.Fatalf("sub-reader Remaining negative: %d", sub.Remaining())
					}
				case 12:
					r.Skip(int(op))
				case 13:
					if rest := r.Rest(); len(rest) != r.Remaining() {
						t.Fatalf("Rest = %d bytes, Remaining = %d", len(rest), r.Remaining())
					}
				case 14:
					r.Remaining()
				case 15:
					// Differential check: if the in-memory Uvarint succeeds,
					// the streaming decoder over the same bytes must return
					// the same value having consumed the same count.
					if r.Err() != nil {
						r.Uvarint()
						break
					}
					rest := append([]byte(nil), r.Rest()...)
					before := r.Remaining()
					got := r.Uvarint()
					if r.Err() != nil {
						break
					}
					var cnt int64
					want, werr := ReadUvarint(bytes.NewReader(rest), &cnt)
					if werr != nil {
						t.Fatalf("Uvarint ok (%d) but ReadUvarint failed: %v", got, werr)
					}
					if want != got || cnt != int64(before-r.Remaining()) {
						t.Fatalf("Uvarint = %d (%d bytes), ReadUvarint = %d (%d bytes)",
							got, before-r.Remaining(), want, cnt)
					}
				}
				rem := r.Remaining()
				if rem < 0 {
					t.Fatalf("Remaining negative: %d", rem)
				}
				if rem > prev {
					t.Fatalf("Remaining grew: %d -> %d", prev, rem)
				}
				prev = rem
				if failedBefore && r.Err() == nil {
					t.Fatal("sticky error cleared")
				}
			}
			if err := r.Err(); err != nil && !errors.Is(err, ErrTruncated) {
				t.Fatalf("Err = %v, want ErrTruncated", err)
			}
		}
	})
}
