package wire

import (
	"math"
	"testing"
)

// TestRoundTrip encodes one of each primitive and decodes it back.
func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Varint(-12345)
	w.Varint(math.MaxInt64)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.Float64(-math.Pi)
	w.String("")
	w.String("snapshot κείμενο")
	w.Float32s([]float32{1.5, -0.25, float32(math.Inf(1))})

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Varint(); got != math.MaxInt64 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.Float64(); got != -math.Pi {
		t.Fatalf("Float64 = %v", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "snapshot κείμενο" {
		t.Fatalf("String = %q", got)
	}
	fs := r.Float32s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -0.25 || !math.IsInf(float64(fs[2]), 1) {
		t.Fatalf("Float32s = %v", fs)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

// TestStickyErrors verifies truncated input poisons the reader and every
// later call returns a zero value instead of panicking or misreading.
func TestStickyErrors(t *testing.T) {
	var w Writer
	w.String("hello")
	buf := w.Bytes()

	r := NewReader(buf[:3]) // length prefix promises more than is there
	if got := r.String(); got != "" {
		t.Fatalf("truncated String = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("no error after truncated decode")
	}
	// Sticky: everything after the failure is zero.
	if r.Byte() != 0 || r.Uvarint() != 0 || r.U64() != 0 || r.String() != "" || r.Float32s() != nil {
		t.Fatal("poisoned reader returned non-zero values")
	}

	r2 := NewReader(nil)
	if r2.Uvarint() != 0 || r2.Err() == nil {
		t.Fatal("empty reader did not fail")
	}
}

// TestSharedReaderZeroCopy verifies NewSharedReader strings alias the
// buffer (no copy) while NewReader strings do not.
func TestSharedReaderZeroCopy(t *testing.T) {
	var w Writer
	w.String("aliased")
	buf := append([]byte(nil), w.Bytes()...)

	shared := NewSharedReader(buf).String()
	copied := NewReader(buf).String()
	if shared != "aliased" || copied != "aliased" {
		t.Fatalf("decoded %q / %q", shared, copied)
	}
	// Mutating the buffer must show through the shared string only.
	buf[len(buf)-1] ^= 0xff
	if shared == "aliased" {
		t.Fatal("shared string did not alias the buffer")
	}
	if copied != "aliased" {
		t.Fatal("copying reader aliased the buffer")
	}
}
