package wire

import (
	"io"
	"math"
	"testing"
)

// TestRoundTrip encodes one of each primitive and decodes it back.
func TestRoundTrip(t *testing.T) {
	var w Writer
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Varint(-12345)
	w.Varint(math.MaxInt64)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.Float64(-math.Pi)
	w.String("")
	w.String("snapshot κείμενο")
	w.Float32s([]float32{1.5, -0.25, float32(math.Inf(1))})

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Varint(); got != math.MaxInt64 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.Float64(); got != -math.Pi {
		t.Fatalf("Float64 = %v", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "snapshot κείμενο" {
		t.Fatalf("String = %q", got)
	}
	fs := r.Float32s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -0.25 || !math.IsInf(float64(fs[2]), 1) {
		t.Fatalf("Float32s = %v", fs)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

// TestStickyErrors verifies truncated input poisons the reader and every
// later call returns a zero value instead of panicking or misreading.
func TestStickyErrors(t *testing.T) {
	var w Writer
	w.String("hello")
	buf := w.Bytes()

	r := NewReader(buf[:3]) // length prefix promises more than is there
	if got := r.String(); got != "" {
		t.Fatalf("truncated String = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("no error after truncated decode")
	}
	// Sticky: everything after the failure is zero.
	if r.Byte() != 0 || r.Uvarint() != 0 || r.U64() != 0 || r.String() != "" || r.Float32s() != nil {
		t.Fatal("poisoned reader returned non-zero values")
	}

	r2 := NewReader(nil)
	if r2.Uvarint() != 0 || r2.Err() == nil {
		t.Fatal("empty reader did not fail")
	}
}

// TestSharedReaderZeroCopy verifies NewSharedReader strings alias the
// buffer (no copy) while NewReader strings do not.
func TestSharedReaderZeroCopy(t *testing.T) {
	var w Writer
	w.String("aliased")
	buf := append([]byte(nil), w.Bytes()...)

	shared := NewSharedReader(buf).String()
	copied := NewReader(buf).String()
	if shared != "aliased" || copied != "aliased" {
		t.Fatalf("decoded %q / %q", shared, copied)
	}
	// Mutating the buffer must show through the shared string only.
	buf[len(buf)-1] ^= 0xff
	if shared == "aliased" {
		t.Fatal("shared string did not alias the buffer")
	}
	if copied != "aliased" {
		t.Fatal("copying reader aliased the buffer")
	}
}

// TestAlignedBlobs round-trips the aligned-blob primitives through both
// reader flavors, checks payload alignment relative to the buffer start,
// and pins zero-copy aliasing for shared readers.
func TestAlignedBlobs(t *testing.T) {
	f := []float32{1.5, -2.25, 3.125, 0, -0.5}
	i32 := []int32{-1, 0, 1, 1 << 30, -(1 << 30)}
	i8 := []int8{-128, -1, 0, 1, 127, 42, -42}

	var w Writer
	w.String("preamble of odd length!") // force a non-aligned start
	w.Float32Blob(f)
	w.Int32Blob(i32)
	w.Int8Blob(i8)
	w.Float32Blob(nil) // empty blob
	w.Uvarint(7)       // trailing field after blobs
	buf := append([]byte(nil), w.Bytes()...)

	for _, shared := range []bool{false, true} {
		var r *Reader
		if shared {
			r = NewSharedReader(buf)
		} else {
			r = NewReader(buf)
		}
		if got := r.String(); got != "preamble of odd length!" {
			t.Fatalf("shared=%v preamble = %q", shared, got)
		}
		gf := r.Float32Blob()
		gi32 := r.Int32Blob()
		gi8 := r.Int8Blob()
		ge := r.Float32Blob()
		tail := r.Uvarint()
		if err := r.Err(); err != nil {
			t.Fatalf("shared=%v decode error: %v", shared, err)
		}
		if len(gf) != len(f) || len(gi32) != len(i32) || len(gi8) != len(i8) || ge != nil || tail != 7 {
			t.Fatalf("shared=%v lengths/tail wrong: %d %d %d %d %d", shared, len(gf), len(gi32), len(gi8), len(ge), tail)
		}
		for i := range f {
			if gf[i] != f[i] {
				t.Fatalf("shared=%v float32[%d] = %v, want %v", shared, i, gf[i], f[i])
			}
		}
		for i := range i32 {
			if gi32[i] != i32[i] {
				t.Fatalf("shared=%v int32[%d] = %v, want %v", shared, i, gi32[i], i32[i])
			}
		}
		for i := range i8 {
			if gi8[i] != i8[i] {
				t.Fatalf("shared=%v int8[%d] = %v, want %v", shared, i, gi8[i], i8[i])
			}
		}
		if shared && cap(gf) != len(gf) {
			t.Fatal("shared blob view must have len == cap so appends copy")
		}
	}
}

// TestBlobAlignmentRelativeToBufferStart verifies every blob payload lands
// on a BlobAlign boundary measured from the buffer start — the invariant
// an mmap'd snapshot depends on.
func TestBlobAlignmentRelativeToBufferStart(t *testing.T) {
	for pre := 0; pre < 70; pre += 7 {
		var w Writer
		w.Raw(make([]byte, pre))
		w.Float32Blob([]float32{1})
		// Payload is the last 4 bytes; its offset must be aligned.
		off := w.Len() - 4
		if off%BlobAlign != 0 {
			t.Fatalf("preamble %d: payload offset %d not %d-aligned", pre, off, BlobAlign)
		}
	}
}

// TestBlobTruncation checks crafted counts and torn payloads poison the
// reader instead of panicking.
func TestBlobTruncation(t *testing.T) {
	var w Writer
	w.Float32Blob([]float32{1, 2, 3})
	whole := append([]byte(nil), w.Bytes()...)

	if r := NewReader(whole[:len(whole)-2]); r.Float32Blob() != nil || r.Err() == nil {
		t.Fatal("torn payload did not poison the reader")
	}
	var w2 Writer
	w2.Uvarint(1 << 62) // crafted count that would wrap n*4
	if r := NewReader(append([]byte(nil), w2.Bytes()...)); r.Float32Blob() != nil || r.Err() == nil {
		t.Fatal("crafted count did not poison the reader")
	}
	if r := NewReader(whole); r.Int8Blob() == nil {
		// Int8Blob over float bytes is legal (reinterprets 12 bytes)...
		t.Log("note: int8 view of float payload decodes; format is untyped")
	}
}

// TestWriterImplementsIOWriter pins the io.Writer adapter used by section
// encoders.
func TestWriterImplementsIOWriter(t *testing.T) {
	var w Writer
	w.Byte(0xaa)
	n, err := io.WriteString(&w, "abc")
	if n != 3 || err != nil {
		t.Fatalf("WriteString = %d, %v", n, err)
	}
	if string(w.Bytes()[1:]) != "abc" {
		t.Fatalf("buffer = %x", w.Bytes())
	}
}

// TestReaderSkip pins Skip semantics including over-skip poisoning.
func TestReaderSkip(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Skip(2)
	if got := r.Byte(); got != 3 || r.Err() != nil {
		t.Fatalf("after Skip(2): byte %d err %v", got, r.Err())
	}
	r2 := NewReader([]byte{1})
	r2.Skip(5)
	if r2.Err() == nil {
		t.Fatal("over-skip did not poison the reader")
	}
}
