// Package wire implements the little-endian binary primitives shared by
// the persistence layer: the retriever's segment records and snapshot
// files, and the hnsw/bm25 state serializers. The format vocabulary is
// deliberately tiny — unsigned varints, zigzag varints, length-prefixed
// strings, fixed-width 32/64-bit words and raw float32 runs — so every
// on-disk structure is self-describing enough to detect truncation without
// a schema compiler.
//
// Writer accumulates bytes in memory (callers frame, checksum and fsync);
// Reader decodes from a byte slice with sticky error semantics: the first
// malformed or truncated field poisons the reader and every later call
// returns a zero value, so decode loops check Err once at the end instead
// of after every field.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"unsafe"
)

// ErrTruncated is the sticky Reader error for any field that runs past the
// end of the buffer or is otherwise malformed.
var ErrTruncated = errors.New("wire: truncated or malformed input")

// Writer accumulates a binary payload in memory. The zero value is ready
// to use; Reset recycles the buffer across records.
type Writer struct {
	buf []byte
}

// Reset empties the writer, keeping the allocated buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated payload. The slice aliases the writer's
// buffer and is invalidated by the next Reset or append.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the accumulated payload size in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(x int64) { w.buf = binary.AppendVarint(w.buf, x) }

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(x uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, x) }

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(x uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, x) }

// Float64 appends the IEEE 754 bits of x as a fixed-width word.
func (w *Writer) Float64(x float64) { w.U64(math.Float64bits(x)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Float32s appends a length-prefixed run of raw little-endian float32
// values.
func (w *Writer) Float32s(v []float32) {
	w.Uvarint(uint64(len(v)))
	for _, f := range v {
		w.U32(math.Float32bits(f))
	}
}

// Raw appends bytes verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes a payload produced by Writer. Errors are sticky: after
// the first failure every method returns a zero value and Err reports
// ErrTruncated.
type Reader struct {
	buf    []byte
	off    int
	err    bool
	shared bool
}

// NewReader wraps a payload for decoding. Decoded strings are copied out
// of the buffer, so the buffer may be reused after decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// NewSharedReader wraps a payload whose backing array is immutable and
// outlives every decoded value — e.g. a snapshot file read once and owned
// by the structures built from it. Strings decode as zero-copy views into
// the buffer instead of fresh allocations, which removes the dominant
// allocation cost of bulk loads; any retained string pins the whole
// buffer, so use NewReader for short-lived or reused buffers.
func NewSharedReader(b []byte) *Reader { return &Reader{buf: b, shared: true} }

// Err returns ErrTruncated if any decode failed, nil otherwise.
func (r *Reader) Err() error {
	if r.err {
		return ErrTruncated
	}
	return nil
}

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Rest returns the undecoded tail of the buffer without consuming it,
// letting a caller hand the remainder to another decoder (e.g. a
// length-prefixed io.ReaderFrom section).
func (r *Reader) Rest() []byte { return r.buf[r.off:] }

func (r *Reader) fail() { r.err = true }

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return x
}

// Varint decodes a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err {
		return 0
	}
	x, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return x
}

// U32 decodes a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	x := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return x
}

// U64 decodes a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	x := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return x
}

// Float64 decodes a fixed-width IEEE 754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.U64()) }

// String decodes a length-prefixed string (a zero-copy view for a
// NewSharedReader, a fresh copy otherwise).
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err || n > uint64(len(r.buf)-r.off) {
		r.fail()
		return ""
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	if !r.shared || len(b) == 0 {
		return string(b)
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// ByteScanner is the reader shape the length-prefixed section decoders
// need: byte-wise reads for varint prefixes, bulk reads for bodies.
type ByteScanner interface {
	io.Reader
	io.ByteReader
}

// AsByteScanner adapts r for section decoding, buffering only when the
// reader cannot already serve single bytes.
func AsByteScanner(r io.Reader) ByteScanner {
	if bs, ok := r.(ByteScanner); ok {
		return bs
	}
	return bufio.NewReader(r)
}

// ReadUvarint reads one unsigned varint from br, adding the consumed byte
// count to *read. It is the streaming counterpart of Reader.Uvarint,
// shared by every length-prefixed section decoder so the 10-byte overflow
// guard and byte accounting live in one place.
func ReadUvarint(br io.ByteReader, read *int64) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		*read++
		if i == 10 {
			return 0, errors.New("wire: varint overflows uint64")
		}
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// Float32s decodes a length-prefixed run of raw float32 values.
func (r *Reader) Float32s() []float32 {
	n := r.Uvarint()
	// Compare by division, not n*4: a crafted count near 2^62 would wrap
	// the multiplication, pass the bounds check and panic in make.
	if r.err || n > uint64(len(r.buf)-r.off)/4 {
		r.fail()
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
		r.off += 4
	}
	return out
}
