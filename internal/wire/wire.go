// Package wire implements the little-endian binary primitives shared by
// the persistence layer: the retriever's segment records and snapshot
// files, and the hnsw/bm25 state serializers. The format vocabulary is
// deliberately tiny — unsigned varints, zigzag varints, length-prefixed
// strings, fixed-width 32/64-bit words and raw float32 runs — so every
// on-disk structure is self-describing enough to detect truncation without
// a schema compiler.
//
// Writer accumulates bytes in memory (callers frame, checksum and fsync);
// Reader decodes from a byte slice with sticky error semantics: the first
// malformed or truncated field poisons the reader and every later call
// returns a zero value, so decode loops check Err once at the end instead
// of after every field.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"unsafe"
)

// ErrTruncated is the sticky Reader error for any field that runs past the
// end of the buffer or is otherwise malformed.
var ErrTruncated = errors.New("wire: truncated or malformed input")

// Writer accumulates a binary payload in memory. The zero value is ready
// to use; Reset recycles the buffer across records.
type Writer struct {
	buf []byte
}

// Reset empties the writer, keeping the allocated buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated payload. The slice aliases the writer's
// buffer and is invalidated by the next Reset or append.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the accumulated payload size in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(x int64) { w.buf = binary.AppendVarint(w.buf, x) }

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(x uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, x) }

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(x uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, x) }

// Float64 appends the IEEE 754 bits of x as a fixed-width word.
func (w *Writer) Float64(x float64) { w.U64(math.Float64bits(x)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Float32s appends a length-prefixed run of raw little-endian float32
// values.
func (w *Writer) Float32s(v []float32) {
	w.Uvarint(uint64(len(v)))
	for _, f := range v {
		w.U32(math.Float32bits(f))
	}
}

// Raw appends bytes verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Write implements io.Writer by appending p verbatim, so section encoders
// that speak io.WriterTo (bm25) can serialize straight into the same
// buffer as the blob sections without an intermediate copy.
func (w *Writer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// BlobAlign is the byte alignment of aligned-blob payloads. 64 covers
// cache lines and every element type's natural alignment, and because
// snapshot files are written with offset 0 == file offset 0, a page-aligned
// mmap of the file makes each blob directly addressable as a typed slice.
const BlobAlign = 64

// hostLittleEndian reports whether the running machine stores multi-byte
// words little-endian, in which case typed slices can be reinterpreted as
// their on-disk bytes (the format is little-endian) without per-element
// conversion.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// PadTo appends zero bytes until the accumulated length is a multiple of
// align. Blob encoders call it between a blob's count prefix and its
// payload; it is exported so framing layers can align section starts too.
func (w *Writer) PadTo(align int) {
	for w.Len()%align != 0 {
		w.buf = append(w.buf, 0)
	}
}

// Float32Blob appends a count prefix, zero padding to BlobAlign, and the
// raw little-endian float32 payload. Unlike Float32s, the payload start is
// aligned relative to the buffer start, so a reader over the same buffer
// base (e.g. an mmap'd snapshot) can reinterpret it zero-copy.
func (w *Writer) Float32Blob(v []float32) {
	w.Uvarint(uint64(len(v)))
	w.PadTo(BlobAlign)
	if hostLittleEndian {
		w.buf = append(w.buf, unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*4)...)
		return
	}
	for _, f := range v {
		w.U32(math.Float32bits(f))
	}
}

// Int32Blob appends a count prefix, padding to BlobAlign, and the raw
// little-endian int32 payload.
func (w *Writer) Int32Blob(v []int32) {
	w.Uvarint(uint64(len(v)))
	w.PadTo(BlobAlign)
	if hostLittleEndian {
		w.buf = append(w.buf, unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*4)...)
		return
	}
	for _, x := range v {
		w.U32(uint32(x))
	}
}

// Int8Blob appends a count prefix, padding to BlobAlign, and the raw int8
// payload. Alignment is not needed for single-byte elements but keeps
// blob starts page-shareable and the framing uniform.
func (w *Writer) Int8Blob(v []int8) {
	w.Uvarint(uint64(len(v)))
	w.PadTo(BlobAlign)
	w.buf = append(w.buf, unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v))...)
}

// Reader decodes a payload produced by Writer. Errors are sticky: after
// the first failure every method returns a zero value and Err reports
// ErrTruncated.
type Reader struct {
	buf    []byte
	off    int
	err    bool
	shared bool
}

// NewReader wraps a payload for decoding. Decoded strings are copied out
// of the buffer, so the buffer may be reused after decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// NewSharedReader wraps a payload whose backing array is immutable and
// outlives every decoded value — e.g. a snapshot file read once and owned
// by the structures built from it. Strings decode as zero-copy views into
// the buffer instead of fresh allocations, which removes the dominant
// allocation cost of bulk loads; any retained string pins the whole
// buffer, so use NewReader for short-lived or reused buffers.
func NewSharedReader(b []byte) *Reader { return &Reader{buf: b, shared: true} }

// Err returns ErrTruncated if any decode failed, nil otherwise.
func (r *Reader) Err() error {
	if r.err {
		return ErrTruncated
	}
	return nil
}

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Rest returns the undecoded tail of the buffer without consuming it,
// letting a caller hand the remainder to another decoder (e.g. a
// length-prefixed io.ReaderFrom section).
func (r *Reader) Rest() []byte { return r.buf[r.off:] }

// Section consumes the next n bytes and returns a sub-reader over them,
// inheriting the shared-ownership mode — a length-prefixed section parses
// in place with no copy. The sub-reader's offsets restart at 0, so
// aligned blobs must not be decoded through it (their padding is relative
// to the enclosing buffer's start); varint/string/fixed-width sections
// are safe. Returns an empty poisoned reader if fewer than n bytes
// remain.
func (r *Reader) Section(n int) *Reader {
	if r.err || n < 0 || n > len(r.buf)-r.off {
		r.fail()
		return &Reader{err: true}
	}
	sub := &Reader{buf: r.buf[r.off : r.off+n], shared: r.shared}
	r.off += n
	return sub
}

func (r *Reader) fail() { r.err = true }

// Skip consumes n bytes without decoding them (e.g. a fixed-width header
// already parsed by other means).
func (r *Reader) Skip(n int) {
	if r.err || n < 0 || n > len(r.buf)-r.off {
		r.fail()
		return
	}
	r.off += n
}

// alignTo consumes the zero padding between a blob's count prefix and its
// payload, leaving the offset at the next multiple of align relative to
// the buffer start. Blob framing therefore requires the reader's buffer to
// begin where the writer's did (offset 0 == file offset 0).
func (r *Reader) alignTo(align int) {
	if r.err {
		return
	}
	pad := (align - r.off%align) % align
	if pad > len(r.buf)-r.off {
		r.fail()
		return
	}
	r.off += pad
}

// blob consumes a count prefix, padding and count*size payload bytes,
// returning the payload view and count. ok is false (and the reader
// poisoned) on truncation or a crafted count.
func (r *Reader) blob(size int) (b []byte, n int, ok bool) {
	c := r.Uvarint()
	r.alignTo(BlobAlign)
	// Compare by division, not c*size: a crafted count near 2^62 would
	// wrap the multiplication and pass the bounds check.
	if r.err || c > uint64((len(r.buf)-r.off)/size) {
		r.fail()
		return nil, 0, false
	}
	n = int(c)
	b = r.buf[r.off : r.off+n*size]
	r.off += n * size
	return b, n, true
}

// Float32Blob decodes an aligned float32 blob. For a NewSharedReader on a
// little-endian host the returned slice is a zero-copy view of the buffer
// with len == cap (appends copy, never scribble on the buffer); otherwise
// it is a fresh copy. Either way the values are identical.
func (r *Reader) Float32Blob() []float32 {
	b, n, ok := r.blob(4)
	if !ok || n == 0 {
		return nil
	}
	if r.shared && hostLittleEndian && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// Int32Blob decodes an aligned int32 blob (zero-copy under the same
// conditions as Float32Blob).
func (r *Reader) Int32Blob() []int32 {
	b, n, ok := r.blob(4)
	if !ok || n == 0 {
		return nil
	}
	if r.shared && hostLittleEndian && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// Int8Blob decodes an aligned int8 blob (zero-copy for a NewSharedReader;
// single-byte elements need no alignment or byte-order handling).
func (r *Reader) Int8Blob() []int8 {
	b, n, ok := r.blob(1)
	if !ok || n == 0 {
		return nil
	}
	if r.shared {
		return unsafe.Slice((*int8)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(b[i])
	}
	return out
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return x
}

// Varint decodes a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err {
		return 0
	}
	x, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return x
}

// U32 decodes a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	x := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return x
}

// U64 decodes a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	x := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return x
}

// Float64 decodes a fixed-width IEEE 754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.U64()) }

// String decodes a length-prefixed string (a zero-copy view for a
// NewSharedReader, a fresh copy otherwise).
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err || n > uint64(len(r.buf)-r.off) {
		r.fail()
		return ""
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	if !r.shared || len(b) == 0 {
		return string(b)
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// ByteScanner is the reader shape the length-prefixed section decoders
// need: byte-wise reads for varint prefixes, bulk reads for bodies.
type ByteScanner interface {
	io.Reader
	io.ByteReader
}

// AsByteScanner adapts r for section decoding, buffering only when the
// reader cannot already serve single bytes.
func AsByteScanner(r io.Reader) ByteScanner {
	if bs, ok := r.(ByteScanner); ok {
		return bs
	}
	return bufio.NewReader(r)
}

// ReadUvarint reads one unsigned varint from br, adding the consumed byte
// count to *read. It is the streaming counterpart of Reader.Uvarint,
// shared by every length-prefixed section decoder so the 10-byte overflow
// guard and byte accounting live in one place.
func ReadUvarint(br io.ByteReader, read *int64) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		*read++
		if i == 10 {
			return 0, errors.New("wire: varint overflows uint64")
		}
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// Float32s decodes a length-prefixed run of raw float32 values.
func (r *Reader) Float32s() []float32 {
	n := r.Uvarint()
	// Compare by division, not n*4: a crafted count near 2^62 would wrap
	// the multiplication, pass the bounds check and panic in make.
	if r.err || n > uint64(len(r.buf)-r.off)/4 {
		r.fail()
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
		r.off += 4
	}
	return out
}
