// Package transform is the Materializer's second tool: the stand-in for the
// paper's "Python interpreter equipped with Pandas and NumPy" (§3.4).
//
// Instead of arbitrary Python, the Materializer writes small declarative
// programs — sequences of typed operations (date normalization, numeric
// coercion, derived columns, interpolation, fuzzy joins, ...). Each
// operation validates its inputs and fails with a structured error naming
// the offending column and sample values, feeding the same
// generate → execute → analyze-error → regenerate repair loop the paper
// describes ("the respective tool analyzes these errors and provides
// feedback to Materializer to fix the generated queries or code").
package transform

import (
	"fmt"
	"sort"
	"strings"

	"pneuma/internal/sqlengine"
	"pneuma/internal/table"
	"pneuma/internal/textutil"
	"pneuma/internal/value"
)

// Error is a structured transform failure.
type Error struct {
	// Op describes the failing operation.
	Op string
	// Msg explains the failure.
	Msg string
	// Samples holds example offending values, when applicable.
	Samples []string
}

func (e *Error) Error() string {
	s := fmt.Sprintf("transform %s: %s", e.Op, e.Msg)
	if len(e.Samples) > 0 {
		s += fmt.Sprintf(" (examples: %s)", strings.Join(e.Samples, ", "))
	}
	return s
}

// Op is one transformation step.
type Op interface {
	// Apply transforms the table, returning a new table (inputs are never
	// mutated).
	Apply(t *table.Table) (*table.Table, error)
	// Describe renders the op as pseudo-code for logging and token
	// accounting — the "code" the Materializer writes.
	Describe() string
}

// Program is an ordered sequence of operations.
type Program struct {
	Ops []Op
}

// Apply runs the program.
func (p Program) Apply(t *table.Table) (*table.Table, error) {
	cur := t
	for _, op := range p.Ops {
		next, err := op.Apply(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Describe renders the whole program.
func (p Program) Describe() string {
	lines := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		lines[i] = op.Describe()
	}
	return strings.Join(lines, "\n")
}

// ---------------------------------------------------------------------------
// ParseDates
// ---------------------------------------------------------------------------

// ParseDates normalizes a column to timestamps, accepting the shared layout
// list (ISO, US, "Month Day, Year", ...). This is the op the paper's §3.4
// example needs: a query expects "yyyy-mm-dd" while the column holds
// "Month Day, Year".
type ParseDates struct {
	// Column is the column to normalize.
	Column string
	// Lenient turns unparseable values into NULL instead of failing.
	Lenient bool
}

// Apply implements Op.
func (op ParseDates) Apply(t *table.Table) (*table.Table, error) {
	ci := t.Schema.ColumnIndex(op.Column)
	if ci < 0 {
		return nil, colMissing("PARSE_DATES", op.Column, t)
	}
	out := t.Clone()
	out.Schema.Columns[ci].Type = value.KindTime
	var bad []string
	for r, row := range out.Rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		tm, ok := v.AsTime()
		if !ok {
			if op.Lenient {
				out.Rows[r][ci] = value.Null()
				continue
			}
			if len(bad) < 3 {
				bad = append(bad, fmt.Sprintf("%q", v.String()))
			}
			continue
		}
		out.Rows[r][ci] = value.Time(tm)
	}
	if len(bad) > 0 {
		return nil, &Error{
			Op:      "PARSE_DATES",
			Msg:     fmt.Sprintf("column %q contains values that do not parse as dates", op.Column),
			Samples: bad,
		}
	}
	return out, nil
}

// Describe implements Op.
func (op ParseDates) Describe() string {
	return fmt.Sprintf("df[%q] = parse_dates(df[%q], lenient=%v)", op.Column, op.Column, op.Lenient)
}

// ---------------------------------------------------------------------------
// ToNumber
// ---------------------------------------------------------------------------

// ToNumber coerces a column to float64, stripping thousands separators,
// currency symbols and unit suffixes ("1,200.50 USD" → 1200.5).
type ToNumber struct {
	Column  string
	Lenient bool
}

// Apply implements Op.
func (op ToNumber) Apply(t *table.Table) (*table.Table, error) {
	ci := t.Schema.ColumnIndex(op.Column)
	if ci < 0 {
		return nil, colMissing("TO_NUMBER", op.Column, t)
	}
	out := t.Clone()
	out.Schema.Columns[ci].Type = value.KindFloat
	var bad []string
	for r, row := range out.Rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		f, ok := parseLooseNumber(v.String())
		if !ok {
			if op.Lenient {
				out.Rows[r][ci] = value.Null()
				continue
			}
			if len(bad) < 3 {
				bad = append(bad, fmt.Sprintf("%q", v.String()))
			}
			continue
		}
		out.Rows[r][ci] = value.Float(f)
	}
	if len(bad) > 0 {
		return nil, &Error{
			Op:      "TO_NUMBER",
			Msg:     fmt.Sprintf("column %q contains non-numeric values", op.Column),
			Samples: bad,
		}
	}
	return out, nil
}

// Describe implements Op.
func (op ToNumber) Describe() string {
	return fmt.Sprintf("df[%q] = to_number(df[%q], lenient=%v)", op.Column, op.Column, op.Lenient)
}

// parseLooseNumber parses numbers with separators, symbols and unit tails.
func parseLooseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, ",", "")
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimPrefix(s, "€")
	percent := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	// Strip a trailing unit word ("12.5 ppm", "300 USD").
	if i := strings.IndexByte(s, ' '); i > 0 {
		head := s[:i]
		if v := value.Infer(head); v.Kind().Numeric() {
			s = head
		}
	}
	v := value.Infer(s)
	f, ok := v.AsFloat()
	if !ok {
		return 0, false
	}
	if percent {
		f /= 100
	}
	return f, true
}

// ---------------------------------------------------------------------------
// Derive
// ---------------------------------------------------------------------------

// Derive adds (or replaces) a column computed from a SQL expression over
// each row, e.g. Expr = "price * (1 + new_tariff - prev_tariff)".
type Derive struct {
	Name string
	Expr string
}

// Apply implements Op.
func (op Derive) Apply(t *table.Table) (*table.Table, error) {
	expr, err := sqlengine.ParseExpr(op.Expr)
	if err != nil {
		return nil, &Error{Op: "DERIVE", Msg: fmt.Sprintf("bad expression %q: %v", op.Expr, err)}
	}
	out := t.Clone()
	ci := out.Schema.ColumnIndex(op.Name)
	fresh := ci < 0
	if fresh {
		out.Schema.Columns = append(out.Schema.Columns, table.Column{Name: op.Name})
		ci = len(out.Schema.Columns) - 1
	}
	kind := value.KindNull
	for r := range out.Rows {
		// Evaluate against the original table so a replaced column's old
		// values stay visible to the expression.
		v, err := sqlengine.EvalOnRow(expr, t, t.Rows[r])
		if err != nil {
			return nil, &Error{Op: "DERIVE", Msg: fmt.Sprintf("row %d: %v", r, err)}
		}
		if fresh {
			out.Rows[r] = append(out.Rows[r], v)
		} else {
			out.Rows[r][ci] = v
		}
		kind = value.UnifyKinds(kind, v.Kind())
	}
	if kind == value.KindNull {
		kind = value.KindString
	}
	out.Schema.Columns[ci].Type = kind
	return out, nil
}

// Describe implements Op.
func (op Derive) Describe() string {
	return fmt.Sprintf("df[%q] = eval(%q)", op.Name, op.Expr)
}

// ---------------------------------------------------------------------------
// Rename / Keep / Drop
// ---------------------------------------------------------------------------

// Rename renames a column.
type Rename struct{ From, To string }

// Apply implements Op.
func (op Rename) Apply(t *table.Table) (*table.Table, error) {
	ci := t.Schema.ColumnIndex(op.From)
	if ci < 0 {
		return nil, colMissing("RENAME", op.From, t)
	}
	out := t.Clone()
	out.Schema.Columns[ci].Name = op.To
	return out, nil
}

// Describe implements Op.
func (op Rename) Describe() string {
	return fmt.Sprintf("df.rename(%q -> %q)", op.From, op.To)
}

// Keep projects the table down to the named columns, in the given order.
type Keep struct{ Columns []string }

// Apply implements Op.
func (op Keep) Apply(t *table.Table) (*table.Table, error) {
	idxs := make([]int, 0, len(op.Columns))
	for _, c := range op.Columns {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return nil, colMissing("KEEP", c, t)
		}
		idxs = append(idxs, ci)
	}
	out := table.New(table.Schema{Name: t.Schema.Name, Description: t.Schema.Description})
	for _, ci := range idxs {
		out.Schema.Columns = append(out.Schema.Columns, t.Schema.Columns[ci])
	}
	for _, row := range t.Rows {
		nr := make(table.Row, len(idxs))
		for i, ci := range idxs {
			nr[i] = row[ci]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Describe implements Op.
func (op Keep) Describe() string {
	return fmt.Sprintf("df = df[[%s]]", strings.Join(op.Columns, ", "))
}

// Drop removes the named columns (missing names are an error, catching
// plan/schema drift early).
type Drop struct{ Columns []string }

// Apply implements Op.
func (op Drop) Apply(t *table.Table) (*table.Table, error) {
	dropSet := make(map[int]struct{}, len(op.Columns))
	for _, c := range op.Columns {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return nil, colMissing("DROP", c, t)
		}
		dropSet[ci] = struct{}{}
	}
	var keep []string
	for i, c := range t.Schema.Columns {
		if _, gone := dropSet[i]; !gone {
			keep = append(keep, c.Name)
		}
	}
	return Keep{Columns: keep}.Apply(t)
}

// Describe implements Op.
func (op Drop) Describe() string {
	return fmt.Sprintf("df = df.drop(columns=[%s])", strings.Join(op.Columns, ", "))
}

// ---------------------------------------------------------------------------
// FillNulls
// ---------------------------------------------------------------------------

// FillMethod selects the null-filling strategy.
type FillMethod string

// Fill methods.
const (
	// FillZero replaces nulls with 0.
	FillZero FillMethod = "zero"
	// FillMean replaces nulls with the column mean (numeric columns only).
	FillMean FillMethod = "mean"
	// FillForward carries the previous non-null value forward.
	FillForward FillMethod = "ffill"
)

// FillNulls fills NULLs in a column.
type FillNulls struct {
	Column string
	Method FillMethod
}

// Apply implements Op.
func (op FillNulls) Apply(t *table.Table) (*table.Table, error) {
	ci := t.Schema.ColumnIndex(op.Column)
	if ci < 0 {
		return nil, colMissing("FILL_NULLS", op.Column, t)
	}
	out := t.Clone()
	switch op.Method {
	case FillZero:
		for r := range out.Rows {
			if out.Rows[r][ci].IsNull() {
				out.Rows[r][ci] = value.Float(0)
			}
		}
	case FillMean:
		var sum float64
		var n int
		for _, row := range out.Rows {
			if f, ok := row[ci].AsFloat(); ok && !row[ci].IsNull() {
				sum += f
				n++
			}
		}
		if n == 0 {
			return nil, &Error{Op: "FILL_NULLS", Msg: fmt.Sprintf("column %q has no numeric values to average", op.Column)}
		}
		mean := value.Float(sum / float64(n))
		for r := range out.Rows {
			if out.Rows[r][ci].IsNull() {
				out.Rows[r][ci] = mean
			}
		}
	case FillForward:
		last := value.Null()
		for r := range out.Rows {
			if out.Rows[r][ci].IsNull() {
				out.Rows[r][ci] = last
			} else {
				last = out.Rows[r][ci]
			}
		}
	default:
		return nil, &Error{Op: "FILL_NULLS", Msg: fmt.Sprintf("unknown method %q (want zero, mean or ffill)", op.Method)}
	}
	return out, nil
}

// Describe implements Op.
func (op FillNulls) Describe() string {
	return fmt.Sprintf("df[%q] = df[%q].fillna(method=%q)", op.Column, op.Column, op.Method)
}

// ---------------------------------------------------------------------------
// Interpolate
// ---------------------------------------------------------------------------

// Interpolate fills NULLs in YColumn by linear interpolation against
// XColumn (sorted ascending). Values outside the observed X range stay
// NULL. This is the op behind the benchmark's "assume Potassium is linearly
// interpolated between samples" questions.
type Interpolate struct {
	XColumn string
	YColumn string
}

// Apply implements Op.
func (op Interpolate) Apply(t *table.Table) (*table.Table, error) {
	xi := t.Schema.ColumnIndex(op.XColumn)
	if xi < 0 {
		return nil, colMissing("INTERPOLATE", op.XColumn, t)
	}
	yi := t.Schema.ColumnIndex(op.YColumn)
	if yi < 0 {
		return nil, colMissing("INTERPOLATE", op.YColumn, t)
	}
	out := t.Clone()
	// Sort row indices by X.
	type pt struct {
		row int
		x   float64
	}
	var pts []pt
	for r, row := range out.Rows {
		x, ok := row[xi].AsFloat()
		if !ok {
			return nil, &Error{Op: "INTERPOLATE", Msg: fmt.Sprintf(
				"x column %q has non-numeric value %q (parse it first)", op.XColumn, row[xi].String())}
		}
		pts = append(pts, pt{r, x})
	}
	// Stable sort: ties on X keep row order, so interpolation is
	// deterministic for repeated X values.
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].x < pts[j].x })

	// Known (x, y) anchor points in x order.
	type anchor struct{ x, y float64 }
	var anchors []anchor
	for _, p := range pts {
		v := out.Rows[p.row][yi]
		if v.IsNull() {
			continue
		}
		y, ok := v.AsFloat()
		if !ok {
			return nil, &Error{Op: "INTERPOLATE", Msg: fmt.Sprintf(
				"y column %q has non-numeric value %q", op.YColumn, v.String())}
		}
		anchors = append(anchors, anchor{p.x, y})
	}
	if len(anchors) < 2 {
		return nil, &Error{Op: "INTERPOLATE", Msg: fmt.Sprintf(
			"column %q needs at least 2 non-null values to interpolate, has %d", op.YColumn, len(anchors))}
	}
	for _, p := range pts {
		if !out.Rows[p.row][yi].IsNull() {
			continue
		}
		// Find the bracketing anchors.
		lo := sort.Search(len(anchors), func(i int) bool { return anchors[i].x >= p.x })
		if lo == 0 || lo == len(anchors) {
			continue // outside range: stays NULL
		}
		a, b := anchors[lo-1], anchors[lo]
		if b.x == a.x {
			out.Rows[p.row][yi] = value.Float(a.y)
			continue
		}
		frac := (p.x - a.x) / (b.x - a.x)
		out.Rows[p.row][yi] = value.Float(a.y + frac*(b.y-a.y))
	}
	out.Schema.Columns[yi].Type = value.KindFloat
	return out, nil
}

// Describe implements Op.
func (op Interpolate) Describe() string {
	return fmt.Sprintf("df[%q] = np.interp(df[%q], known_x, known_y)", op.YColumn, op.XColumn)
}

// InterpolateAt computes the linearly interpolated Y value at a single X
// coordinate from (x, y) pairs — the scalar version used for "value at the
// first/last recorded time" questions. Xs need not be sorted. Exact X
// matches return the recorded value.
func InterpolateAt(xs, ys []float64, at float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, &Error{Op: "INTERPOLATE_AT", Msg: "xs and ys must be equal-length and non-empty"}
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	if at <= pts[0].x {
		return pts[0].y, nil
	}
	if at >= pts[len(pts)-1].x {
		return pts[len(pts)-1].y, nil
	}
	for i := 1; i < len(pts); i++ {
		if at <= pts[i].x {
			a, b := pts[i-1], pts[i]
			if b.x == a.x {
				return a.y, nil
			}
			frac := (at - a.x) / (b.x - a.x)
			return a.y + frac*(b.y-a.y), nil
		}
	}
	return pts[len(pts)-1].y, nil
}

// ---------------------------------------------------------------------------
// FuzzyJoin
// ---------------------------------------------------------------------------

// FuzzyJoin joins the working table with Right on approximate string
// equality of the key columns — the "semantic or fuzzy join" the paper's
// §3.5 names as an operation static pipelines struggle to absorb. Each left
// row matches the best-scoring right row whose similarity ≥ Threshold.
type FuzzyJoin struct {
	Right    *table.Table
	LeftKey  string
	RightKey string
	// Threshold is the minimum similarity in [0,1] (default 0.75).
	Threshold float64
	// KeepUnmatched keeps left rows without a match (right columns NULL).
	KeepUnmatched bool
}

// Apply implements Op.
func (op FuzzyJoin) Apply(t *table.Table) (*table.Table, error) {
	if op.Right == nil {
		return nil, &Error{Op: "FUZZY_JOIN", Msg: "right table is nil"}
	}
	li := t.Schema.ColumnIndex(op.LeftKey)
	if li < 0 {
		return nil, colMissing("FUZZY_JOIN", op.LeftKey, t)
	}
	ri := op.Right.Schema.ColumnIndex(op.RightKey)
	if ri < 0 {
		return nil, colMissing("FUZZY_JOIN", op.RightKey, op.Right)
	}
	threshold := op.Threshold
	if threshold <= 0 {
		threshold = 0.75
	}

	out := table.New(table.Schema{Name: t.Schema.Name + "_joined"})
	out.Schema.Columns = append(out.Schema.Columns, t.Schema.Columns...)
	for _, c := range op.Right.Schema.Columns {
		name := c.Name
		if out.Schema.ColumnIndex(name) >= 0 {
			name = op.Right.Schema.Name + "_" + name
		}
		cc := c
		cc.Name = name
		out.Schema.Columns = append(out.Schema.Columns, cc)
	}

	rightWidth := op.Right.NumCols()
	for _, lrow := range t.Rows {
		lkey := normalizeKey(lrow[li].String())
		bestScore := -1.0
		bestRow := -1
		for rr, rrow := range op.Right.Rows {
			score := keySimilarity(lkey, normalizeKey(rrow[ri].String()))
			if score > bestScore {
				bestScore, bestRow = score, rr
			}
		}
		if bestRow >= 0 && bestScore >= threshold {
			nr := make(table.Row, 0, len(lrow)+rightWidth)
			nr = append(nr, lrow...)
			nr = append(nr, op.Right.Rows[bestRow]...)
			out.Rows = append(out.Rows, nr)
		} else if op.KeepUnmatched {
			nr := make(table.Row, len(lrow)+rightWidth)
			copy(nr, lrow)
			for i := len(lrow); i < len(nr); i++ {
				nr[i] = value.Null()
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// Describe implements Op.
func (op FuzzyJoin) Describe() string {
	return fmt.Sprintf("df = fuzzy_join(df, %s, left_on=%q, right_on=%q, threshold=%.2f)",
		op.Right.Schema.Name, op.LeftKey, op.RightKey, op.Threshold)
}

func normalizeKey(s string) string {
	return strings.Join(textutil.Tokenize(s), " ")
}

// keySimilarity blends edit-distance and token-overlap similarity so both
// "ACME GmbH" / "Acme" and "supplier-12" / "supplier 12" match.
func keySimilarity(a, b string) float64 {
	if a == "" || b == "" {
		return 0
	}
	lev := textutil.Similarity(a, b)
	jac := textutil.Jaccard(strings.Fields(a), strings.Fields(b))
	if lev > jac {
		return lev
	}
	return jac
}

// ---------------------------------------------------------------------------
// AppendRows
// ---------------------------------------------------------------------------

// AppendRows unions the working table with Other by column name; Other's
// columns are aligned to the working table's schema and missing columns
// become NULL. Extra columns in Other are an error (silent data loss is
// worse than a repair-loop round trip).
type AppendRows struct {
	Other *table.Table
}

// Apply implements Op.
func (op AppendRows) Apply(t *table.Table) (*table.Table, error) {
	if op.Other == nil {
		return nil, &Error{Op: "APPEND_ROWS", Msg: "other table is nil"}
	}
	for _, c := range op.Other.Schema.Columns {
		if t.Schema.ColumnIndex(c.Name) < 0 {
			return nil, &Error{Op: "APPEND_ROWS", Msg: fmt.Sprintf(
				"column %q of %s not present in target schema %s",
				c.Name, op.Other.Schema.Name, t.Schema.String())}
		}
	}
	out := t.Clone()
	for _, orow := range op.Other.Rows {
		nr := make(table.Row, t.NumCols())
		for i, c := range t.Schema.Columns {
			oi := op.Other.Schema.ColumnIndex(c.Name)
			if oi < 0 {
				nr[i] = value.Null()
			} else {
				nr[i] = orow[oi]
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Describe implements Op.
func (op AppendRows) Describe() string {
	name := "<nil>"
	if op.Other != nil {
		name = op.Other.Schema.Name
	}
	return fmt.Sprintf("df = pd.concat([df, %s])", name)
}

// colMissing builds the shared column-not-found error with candidates,
// including near-miss suggestions — the hook the repair loop uses to fix
// misspelled column names.
func colMissing(op, col string, t *table.Table) error {
	names := t.Schema.ColumnNames()
	best, bestScore := "", 0.0
	for _, n := range names {
		if s := textutil.Similarity(strings.ToLower(col), strings.ToLower(n)); s > bestScore {
			best, bestScore = n, s
		}
	}
	msg := fmt.Sprintf("column %q not found in %s; available: %s", col, t.Schema.Name, strings.Join(names, ", "))
	if bestScore >= 0.5 {
		msg += fmt.Sprintf(" (did you mean %q?)", best)
	}
	return &Error{Op: op, Msg: msg}
}
