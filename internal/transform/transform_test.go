package transform

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pneuma/internal/table"
	"pneuma/internal/value"
)

func mkTable(cols []table.Column, rows ...table.Row) *table.Table {
	t := table.New(table.Schema{Name: "t", Columns: cols})
	for _, r := range rows {
		t.MustAppend(r)
	}
	return t
}

func TestParseDates(t *testing.T) {
	in := mkTable(
		[]table.Column{{Name: "d", Type: value.KindString}},
		table.Row{value.String("2020-01-15")},
		table.Row{value.String("March 5, 2021")},
		table.Row{value.Null()},
	)
	out, err := ParseDates{Column: "d"}.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Columns[0].Type != value.KindTime {
		t.Errorf("type = %v, want time", out.Schema.Columns[0].Type)
	}
	if out.Rows[1][0].TimeVal().Year() != 2021 {
		t.Errorf("parsed year = %v", out.Rows[1][0])
	}
	if !out.Rows[2][0].IsNull() {
		t.Error("null must stay null")
	}
	// Input must not be mutated.
	if in.Rows[0][0].Kind() != value.KindString {
		t.Error("ParseDates mutated its input")
	}
}

func TestParseDatesStrictFailsWithSamples(t *testing.T) {
	in := mkTable(
		[]table.Column{{Name: "d", Type: value.KindString}},
		table.Row{value.String("2020-01-15")},
		table.Row{value.String("n.d.")},
	)
	_, err := ParseDates{Column: "d"}.Apply(in)
	if err == nil || !strings.Contains(err.Error(), "n.d.") {
		t.Fatalf("err = %v, want failure naming the bad value", err)
	}
	// Lenient mode nulls the bad values instead.
	out, err := ParseDates{Column: "d", Lenient: true}.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[1][0].IsNull() {
		t.Error("lenient parse should null the bad value")
	}
}

func TestToNumber(t *testing.T) {
	in := mkTable(
		[]table.Column{{Name: "v", Type: value.KindString}},
		table.Row{value.String("1,200.50")},
		table.Row{value.String("$99")},
		table.Row{value.String("45%")},
		table.Row{value.String("12.5 ppm")},
	)
	out, err := ToNumber{Column: "v"}.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1200.50, 99, 0.45, 12.5}
	for i, w := range want {
		if got := out.Rows[i][0].FloatVal(); got != w {
			t.Errorf("row %d = %v, want %v", i, got, w)
		}
	}
	// Strict failure on text.
	bad := mkTable([]table.Column{{Name: "v", Type: value.KindString}},
		table.Row{value.String("unknown")})
	if _, err := (ToNumber{Column: "v"}).Apply(bad); err == nil {
		t.Fatal("strict ToNumber should fail on text")
	}
}

func TestDerive(t *testing.T) {
	in := mkTable(
		[]table.Column{
			{Name: "price", Type: value.KindFloat},
			{Name: "tariff", Type: value.KindFloat},
		},
		table.Row{value.Float(100), value.Float(0.10)},
	)
	out, err := Derive{Name: "adjusted", Expr: "price * (1 + tariff)"}.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Cell(0, "adjusted").FloatVal(); math.Abs(got-110) > 1e-9 {
		t.Errorf("adjusted = %v, want 110", got)
	}
	// Bad expression errors cleanly.
	if _, err := (Derive{Name: "x", Expr: "price +* 2"}).Apply(in); err == nil {
		t.Fatal("bad expression must error")
	}
	// Unknown column in expression errors with candidates.
	_, err = Derive{Name: "x", Expr: "missing_col * 2"}.Apply(in)
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("err = %v", err)
	}
}

func TestRenameKeepDrop(t *testing.T) {
	in := mkTable(
		[]table.Column{
			{Name: "a", Type: value.KindInt},
			{Name: "b", Type: value.KindInt},
			{Name: "c", Type: value.KindInt},
		},
		table.Row{value.Int(1), value.Int(2), value.Int(3)},
	)
	out, err := Rename{From: "a", To: "x"}.Apply(in)
	if err != nil || out.Schema.ColumnIndex("x") != 0 {
		t.Fatalf("rename failed: %v", err)
	}
	out, err = Keep{Columns: []string{"c", "a"}}.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 2 || out.Schema.Columns[0].Name != "c" {
		t.Fatalf("keep wrong: %v", out.Schema)
	}
	if out.Rows[0][0].IntVal() != 3 {
		t.Fatalf("keep values wrong: %v", out.Rows[0])
	}
	out, err = Drop{Columns: []string{"b"}}.Apply(in)
	if err != nil || out.NumCols() != 2 {
		t.Fatalf("drop failed: %v %v", err, out.Schema)
	}
	// Missing columns error with a did-you-mean hint.
	_, err = Keep{Columns: []string{"aa"}}.Apply(in)
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("err = %v, want did-you-mean", err)
	}
}

func TestFillNulls(t *testing.T) {
	base := func() *table.Table {
		return mkTable(
			[]table.Column{{Name: "v", Type: value.KindFloat}},
			table.Row{value.Float(10)},
			table.Row{value.Null()},
			table.Row{value.Float(30)},
		)
	}
	out, err := FillNulls{Column: "v", Method: FillZero}.Apply(base())
	if err != nil || out.Rows[1][0].FloatVal() != 0 {
		t.Fatalf("zero fill: %v %v", err, out.Rows[1][0])
	}
	out, err = FillNulls{Column: "v", Method: FillMean}.Apply(base())
	if err != nil || out.Rows[1][0].FloatVal() != 20 {
		t.Fatalf("mean fill: %v %v", err, out.Rows[1][0])
	}
	out, err = FillNulls{Column: "v", Method: FillForward}.Apply(base())
	if err != nil || out.Rows[1][0].FloatVal() != 10 {
		t.Fatalf("ffill: %v %v", err, out.Rows[1][0])
	}
	if _, err := (FillNulls{Column: "v", Method: "bogus"}).Apply(base()); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestInterpolate(t *testing.T) {
	in := mkTable(
		[]table.Column{
			{Name: "x", Type: value.KindInt},
			{Name: "y", Type: value.KindFloat},
		},
		table.Row{value.Int(0), value.Float(0)},
		table.Row{value.Int(10), value.Null()},
		table.Row{value.Int(20), value.Float(20)},
		table.Row{value.Int(30), value.Null()}, // outside anchors? no: below max
		table.Row{value.Int(40), value.Float(40)},
		table.Row{value.Int(50), value.Null()}, // beyond last anchor: stays null
	)
	out, err := Interpolate{XColumn: "x", YColumn: "y"}.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Rows[1][1].FloatVal(); got != 10 {
		t.Errorf("interp@10 = %v, want 10", got)
	}
	if got := out.Rows[3][1].FloatVal(); got != 30 {
		t.Errorf("interp@30 = %v, want 30", got)
	}
	if !out.Rows[5][1].IsNull() {
		t.Error("value beyond the last anchor must stay null")
	}
}

func TestInterpolateNeedsTwoAnchors(t *testing.T) {
	in := mkTable(
		[]table.Column{
			{Name: "x", Type: value.KindInt},
			{Name: "y", Type: value.KindFloat},
		},
		table.Row{value.Int(0), value.Float(1)},
		table.Row{value.Int(1), value.Null()},
	)
	_, err := Interpolate{XColumn: "x", YColumn: "y"}.Apply(in)
	if err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpolateAt(t *testing.T) {
	xs := []float64{0, 10, 20}
	ys := []float64{0, 100, 200}
	if v, _ := InterpolateAt(xs, ys, 5); v != 50 {
		t.Errorf("interp@5 = %v", v)
	}
	if v, _ := InterpolateAt(xs, ys, -5); v != 0 {
		t.Errorf("clamp low = %v", v)
	}
	if v, _ := InterpolateAt(xs, ys, 50); v != 200 {
		t.Errorf("clamp high = %v", v)
	}
	if _, err := InterpolateAt(nil, nil, 1); err == nil {
		t.Error("empty input must error")
	}
}

func TestInterpolateAtProperty(t *testing.T) {
	// Interpolated values stay within [min(y), max(y)] for in-range x.
	f := func(raw [6]float64, at float64) bool {
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, 6)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			y := math.Mod(math.Abs(v), 1000)
			if math.IsNaN(y) {
				y = 0
			}
			ys[i] = y
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		p := math.Mod(math.Abs(at), 5)
		if math.IsNaN(p) {
			p = 0
		}
		v, err := InterpolateAt(xs, ys, p)
		return err == nil && v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFuzzyJoin(t *testing.T) {
	left := mkTable(
		[]table.Column{
			{Name: "supplier", Type: value.KindString},
			{Name: "price", Type: value.KindFloat},
		},
		table.Row{value.String("ACME GmbH"), value.Float(10)},
		table.Row{value.String("Orion SARL"), value.Float(20)},
		table.Row{value.String("Nowhere Corp"), value.Float(30)},
	)
	right := mkTable(
		[]table.Column{
			{Name: "name", Type: value.KindString},
			{Name: "country", Type: value.KindString},
		},
		table.Row{value.String("Acme GmbH."), value.String("Germany")},
		table.Row{value.String("ORION sarl"), value.String("France")},
	)
	out, err := FuzzyJoin{Right: right, LeftKey: "supplier", RightKey: "name", Threshold: 0.8}.Apply(left)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (Nowhere Corp unmatched)", out.NumRows())
	}
	if out.Cell(0, "country").StringVal() != "Germany" {
		t.Errorf("join country = %v", out.Cell(0, "country"))
	}
	// KeepUnmatched pads instead of dropping.
	out, err = FuzzyJoin{Right: right, LeftKey: "supplier", RightKey: "name", Threshold: 0.8, KeepUnmatched: true}.Apply(left)
	if err != nil || out.NumRows() != 3 {
		t.Fatalf("keep unmatched: %v rows=%d", err, out.NumRows())
	}
	if !out.Cell(2, "country").IsNull() {
		t.Error("unmatched row should have null right side")
	}
}

func TestAppendRows(t *testing.T) {
	a := mkTable(
		[]table.Column{{Name: "x", Type: value.KindInt}, {Name: "y", Type: value.KindInt}},
		table.Row{value.Int(1), value.Int(2)},
	)
	b := mkTable(
		[]table.Column{{Name: "y", Type: value.KindInt}, {Name: "x", Type: value.KindInt}},
		table.Row{value.Int(20), value.Int(10)},
	)
	out, err := AppendRows{Other: b}.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Rows[1][0].IntVal() != 10 {
		t.Fatalf("append misaligned: %v", out.Rows)
	}
	// Extra columns error.
	c := mkTable([]table.Column{{Name: "z", Type: value.KindInt}}, table.Row{value.Int(9)})
	if _, err := (AppendRows{Other: c}).Apply(a); err == nil {
		t.Fatal("extra column must error")
	}
}

func TestProgramComposition(t *testing.T) {
	in := mkTable(
		[]table.Column{
			{Name: "d", Type: value.KindString},
			{Name: "v", Type: value.KindString},
		},
		table.Row{value.String("2020-01-01"), value.String("10")},
		table.Row{value.String("2021-01-01"), value.String("bad")},
	)
	prog := Program{Ops: []Op{
		ParseDates{Column: "d"},
		ToNumber{Column: "v", Lenient: true},
		Derive{Name: "doubled", Expr: "v * 2"},
		Keep{Columns: []string{"d", "doubled"}},
	}}
	out, err := prog.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 2 || out.Cell(0, "doubled").FloatVal() != 20 {
		t.Fatalf("program result wrong: %v", out.Rows)
	}
	if desc := prog.Describe(); !strings.Contains(desc, "parse_dates") || !strings.Contains(desc, "doubled") {
		t.Errorf("describe missing steps:\n%s", desc)
	}
}
