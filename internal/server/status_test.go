package server

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"pneuma/internal/pnerr"
)

// TestStatusMappingExhaustive iterates the full pnerr vocabulary via
// pnerr.Codes(): every code must have an explicit HTTP status. Adding a
// code to pnerr (and its Codes() registry) without extending statusFor
// fails here, so new error codes cannot ship without wire semantics.
func TestStatusMappingExhaustive(t *testing.T) {
	for _, code := range pnerr.Codes() {
		if _, ok := statusFor[code]; !ok {
			t.Errorf("pnerr code %q has no HTTP status mapping in statusFor", code)
		}
	}
	if len(statusFor) != len(pnerr.Codes()) {
		t.Errorf("statusFor has %d entries, pnerr.Codes() has %d — mapping and vocabulary out of sync",
			len(statusFor), len(pnerr.Codes()))
	}
}

// TestStatusMapping pins the mapped status of each failure shape the
// serving layer produces.
func TestStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil is 200", nil, http.StatusOK},
		{"bad query is 400", pnerr.BadQueryf("op", "empty"), http.StatusBadRequest},
		{"client cancel is 499", pnerr.Canceled("op", context.Canceled), StatusClientClosedRequest},
		{"server deadline is 504", pnerr.Canceled("op", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"corrupt index is 500", pnerr.Corrupt("op", errors.New("bad magic")), http.StatusInternalServerError},
		{"locked index is 503", pnerr.Locked("op", errors.New("held")), http.StatusServiceUnavailable},
		{"closed is 503", pnerr.Closed("op"), http.StatusServiceUnavailable},
		{"overloaded is 503", pnerr.Overloaded("op"), http.StatusServiceUnavailable},
		{"degraded is 200", pnerr.Degraded("op", errors.New("web: down")), http.StatusOK},
		{"untyped error is 500", errors.New("mystery"), http.StatusInternalServerError},
		{"wrapped typed error keeps its status", pnerr.New(pnerr.ErrBadQuery, "op", errors.New("detail")), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := Status(tc.err); got != tc.want {
			t.Errorf("%s: Status(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestRetryable: exactly the 503 family invites a retry (and earns the
// Retry-After header) — not client errors, not hard failures.
func TestRetryable(t *testing.T) {
	if !Retryable(pnerr.Overloaded("op")) || !Retryable(pnerr.Closed("op")) {
		t.Error("overloaded/closed must be retryable")
	}
	if Retryable(pnerr.BadQueryf("op", "x")) {
		t.Error("bad query must not be retryable")
	}
	if Retryable(pnerr.Canceled("op", context.DeadlineExceeded)) {
		t.Error("deadline (504) must not be retryable — the same timeout would fire again")
	}
	if Retryable(nil) {
		t.Error("nil must not be retryable")
	}
}
