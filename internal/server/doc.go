// Package server is the HTTP/JSON serving front end over pneuma.Service —
// the network layer that turns the in-process serving facade into a
// daemon (cmd/pneuma-server). It adds exactly the wire concerns and leaves
// scheduling, cancellation and typed errors to the substrate built for
// them:
//
//   - Routes: session lifecycle (POST /v1/sessions, POST
//     /v1/sessions/{id}/messages, DELETE /v1/sessions/{id}), retrieval
//     (GET /v1/search), live corpus mutation (POST /v1/tables, DELETE
//     /v1/tables), and the operational trio /healthz, /readyz, /metrics.
//
//   - Deadlines: every API request runs under a context deadline — the
//     ?timeout query parameter clamped by Config.MaxTimeout (default
//     Config.DefaultTimeout) — threaded through the Service into shard
//     fan-outs, model calls and queue waits, so a slow request cancels
//     promptly end to end.
//
//   - Status codes: the typed pnerr vocabulary maps exhaustively onto
//     HTTP via Status — ErrBadQuery 400, ErrCanceled 499 (client closed;
//     504 when the deadline fired), ErrClosed/ErrOverloaded/ErrIndexLocked
//     503 with Retry-After, ErrIndexCorrupt 500, ErrDegraded 200 with the
//     degraded marker (X-Pneuma-Degraded header and "degraded" body
//     field). A test iterates pnerr.Codes() so a new code cannot ship
//     without a mapping.
//
//   - Streaming: long Seeker turns deliver incrementally over SSE
//     (?stream=sse or Accept: text/event-stream) — an accepted event on
//     admission, working heartbeats while the turn runs, then one reply
//     or error event; plain JSON otherwise.
//
//   - Load shedding: the Service's scheduler rejects with a typed
//     ErrOverloaded when its wait queue is at WithMaxQueue, and the
//     server itself sheds with 503 before enqueueing when the scheduler's
//     EstimatedWait exceeds Config.MaxEstimatedWait — so a saturated
//     daemon answers "come back later" in microseconds instead of letting
//     every client time out in line.
//
//   - Drain: Run serves until its context is canceled (SIGTERM in the
//     daemon), then stops admitting API requests (503 + Retry-After,
//     /readyz flips to 503 for load balancers), lets in-flight requests
//     finish up to Config.DrainTimeout, and finally closes the Service so
//     disk-backed indexes flush. /healthz stays 200 for the whole drain —
//     the process is alive, just not ready.
//
// Observability is Prometheus text format (stdlib only): request counters
// and latency histograms per route, the scheduler's queue-depth/in-flight
// gauges and admission counters, queue-wait totals, and the substrate's
// own meters — LLM token totals, retriever fsyncs and compaction runs —
// all read from one Service.Stats snapshot.
package server
