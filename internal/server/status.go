package server

import (
	"context"
	"errors"
	"net/http"

	"pneuma/internal/pnerr"
)

// StatusClientClosedRequest is the de facto standard status (nginx's 499)
// for a request abandoned by its client: the typed ErrCanceled maps here
// when the cancellation came from the client's connection rather than the
// server's own deadline clamp.
const StatusClientClosedRequest = 499

// statusFor maps every code of the pnerr vocabulary onto its HTTP status.
// The mapping must stay exhaustive: TestStatusMappingExhaustive iterates
// pnerr.Codes() and fails if a code is missing here, so a new error code
// cannot ship without deciding its wire semantics. ErrDegraded's 200 is
// deliberate — a degraded query carries usable results, and the response
// body and X-Pneuma-Degraded header mark the partiality.
var statusFor = map[pnerr.Code]int{
	pnerr.ErrCanceled:     StatusClientClosedRequest,
	pnerr.ErrBadQuery:     http.StatusBadRequest,
	pnerr.ErrIndexCorrupt: http.StatusInternalServerError,
	pnerr.ErrIndexLocked:  http.StatusServiceUnavailable,
	pnerr.ErrClosed:       http.StatusServiceUnavailable,
	pnerr.ErrDegraded:     http.StatusOK,
	pnerr.ErrOverloaded:   http.StatusServiceUnavailable,
}

// Status maps an error from the pneuma API onto its HTTP status code. nil
// is 200. ErrCanceled distinguishes who gave up: a cause chain carrying
// context.DeadlineExceeded means the server-side per-request deadline
// fired (504 Gateway Timeout); plain cancellation means the client closed
// the request (499). Errors without a typed code are internal (500).
func Status(err error) int {
	if err == nil {
		return http.StatusOK
	}
	code := pnerr.CodeOf(err)
	if code == pnerr.ErrCanceled && errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if status, ok := statusFor[code]; ok {
		return status
	}
	return http.StatusInternalServerError
}

// Retryable reports whether the failure is worth the client's retry after
// backing off — the 503 family (shed, draining, locked index), which gets
// a Retry-After header.
func Retryable(err error) bool {
	return Status(err) == http.StatusServiceUnavailable
}
