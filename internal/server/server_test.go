package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pneuma"
	"pneuma/internal/leakcheck"
)

// newTestServer boots a Service over the archaeology corpus and mounts the
// handler tree on an httptest server.
func newTestServer(t *testing.T, cfg Config, opts ...pneuma.Option) (*httptest.Server, *pneuma.Service) {
	t.Helper()
	svc, err := pneuma.New(pneuma.ArchaeologyDataset(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	cfg.Service = svc
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, svc
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response body: %v", err)
	}
}

// TestSessionLifecycle drives one full conversation over the wire: create,
// send, close, and the 400 for addressing the closed session afterwards.
func TestSessionLifecycle(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ts, _ := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/sessions", `{"user":"alice"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session = %d, want 201", resp.StatusCode)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	decodeBody(t, resp, &created)
	if created.SessionID == "" {
		t.Fatal("create session returned no session_id")
	}

	resp = postJSON(t, ts.URL+"/v1/sessions/"+created.SessionID+"/messages",
		`{"message":"What tables describe soil samples?"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("send = %d, want 200", resp.StatusCode)
	}
	var sent sendResponse
	decodeBody(t, resp, &sent)
	if sent.Reply.Message == "" {
		t.Error("send returned an empty reply message")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+created.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close session = %d, want 204", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/sessions/"+created.SessionID+"/messages", `{"message":"hello?"}`)
	var errBody errorBody
	code := resp.StatusCode
	decodeBody(t, resp, &errBody)
	if code != http.StatusBadRequest || errBody.Code != "bad query" {
		t.Errorf("send to closed session = %d code %q, want 400 %q", code, errBody.Code, "bad query")
	}
}

// TestSendStreamsSSE: a ?stream=sse send delivers the turn as server-sent
// events — an accepted event first, a terminal reply event last.
func TestSendStreamsSSE(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ts, _ := newTestServer(t, Config{})

	resp := postJSON(t, ts.URL+"/v1/sessions", `{"user":"bob"}`)
	var created struct {
		SessionID string `json:"session_id"`
	}
	decodeBody(t, resp, &created)

	resp = postJSON(t, ts.URL+"/v1/sessions/"+created.SessionID+"/messages?stream=sse",
		`{"message":"Which table holds radiocarbon dates?"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed send = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := string(body)
	if !strings.Contains(events, "event: accepted\n") {
		t.Error("stream missing the accepted event")
	}
	if !strings.Contains(events, "event: reply\n") {
		t.Errorf("stream missing the reply event:\n%s", events)
	}
	if strings.Contains(events, "event: error\n") {
		t.Errorf("stream carried an error event:\n%s", events)
	}
}

// TestSearchRoutes exercises /v1/search: a plain query answers 200 with
// documents; an explicitly requested unconfigured source degrades (200 +
// marker, not an error); parameter abuse answers 400.
func TestSearchRoutes(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ts, _ := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/search?q=soil+samples+potassium&k=3")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Pneuma-Degraded") != "" {
		t.Error("healthy search carried the degraded header")
	}
	var ok searchResponse
	decodeBody(t, resp, &ok)
	if len(ok.Documents) == 0 {
		t.Fatal("search returned no documents")
	}
	if len(ok.Documents) > 3 {
		t.Errorf("search returned %d documents, want at most k=3", len(ok.Documents))
	}
	if d := ok.Documents[0]; d.ID == "" || d.Title == "" || d.Summary == "" {
		t.Errorf("wire document missing fields: %+v", d)
	}
	if ok.Degraded != "" {
		t.Errorf("healthy search marked degraded: %q", ok.Degraded)
	}

	// The server has no web engine: naming web explicitly degrades the
	// query — partial results with the marker, status still 200.
	resp, err = http.Get(ts.URL + "/v1/search?q=soil+samples&sources=tables,web")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Pneuma-Degraded") != "true" {
		t.Error("degraded search missing the X-Pneuma-Degraded header")
	}
	var deg searchResponse
	decodeBody(t, resp, &deg)
	if deg.Degraded == "" {
		t.Error("degraded search body missing the degraded detail")
	}
	if len(deg.Documents) == 0 {
		t.Error("degraded search lost the surviving source's documents")
	}

	for _, bad := range []string{
		"/v1/search?q=",               // empty query
		"/v1/search?q=x&k=zero",       // unparseable k
		"/v1/search?q=x&k=-1",         // non-positive k
		"/v1/search?q=x&timeout=b",    // unparseable timeout
		"/v1/search?q=x&sources=mars", // unknown source
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		var errBody errorBody
		code := resp.StatusCode
		decodeBody(t, resp, &errBody)
		if code != http.StatusBadRequest || errBody.Code != "bad query" {
			t.Errorf("GET %s = %d code %q, want 400 %q", bad, code, errBody.Code, "bad query")
		}
	}
}

// TestTimeoutClamp: a microscopic ?timeout makes the server-side deadline
// fire, which must surface as 504 (the server gave up), not 499 (the
// client did).
func TestTimeoutClamp(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ts, _ := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/search?q=soil&timeout=1ns")
	if err != nil {
		t.Fatal(err)
	}
	var errBody errorBody
	code := resp.StatusCode
	decodeBody(t, resp, &errBody)
	if code != http.StatusGatewayTimeout {
		t.Errorf("1ns-deadline search = %d, want 504", code)
	}
	if errBody.Code != "canceled" {
		t.Errorf("deadline error code = %q, want canceled", errBody.Code)
	}
}

// TestTableMutationRoutes round-trips a table over the wire: POST a CSV,
// find its rows via search, DELETE it, and watch the delete count.
func TestTableMutationRoutes(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ts, _ := newTestServer(t, Config{})

	csv := "city,population\nzurich,430000\ngeneva,200000\n"
	resp := postJSON(t, ts.URL+"/v1/tables",
		fmt.Sprintf(`[{"name":"cities","csv":%q}]`, csv))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add tables = %d, want 200", resp.StatusCode)
	}
	var added struct {
		Added int `json:"added"`
	}
	decodeBody(t, resp, &added)
	if added.Added != 1 {
		t.Fatalf("added = %d, want 1", added.Added)
	}

	found := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !found {
		resp, err := http.Get(ts.URL + "/v1/search?q=zurich+population&k=10")
		if err != nil {
			t.Fatal(err)
		}
		var sr searchResponse
		decodeBody(t, resp, &sr)
		for _, d := range sr.Documents {
			if strings.Contains(d.Title, "cities") || strings.Contains(d.Summary, "zurich") {
				found = true
			}
		}
		if !found {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !found {
		t.Fatal("POSTed table never became searchable")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tables",
		strings.NewReader(`{"names":["cities","never-existed"]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var deleted struct {
		Deleted int `json:"deleted"`
	}
	decodeBody(t, resp, &deleted)
	if deleted.Deleted != 1 {
		t.Errorf("deleted = %d, want 1 (only the real table)", deleted.Deleted)
	}

	resp = postJSON(t, ts.URL+"/v1/tables", `[]`)
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusBadRequest {
		t.Errorf("empty add-tables = %d, want 400", code)
	}
}

// TestOperationalEndpoints: /healthz and /readyz answer 200 while serving,
// and /metrics renders the Prometheus exposition with the request counters
// this very test drove plus the scheduler and substrate gauges.
func TestOperationalEndpoints(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ts, _ := newTestServer(t, Config{})

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// Drive one success and one client error so both counters exist.
	if resp, err := http.Get(ts.URL + "/v1/search?q=soil&k=2"); err == nil {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/search?q="); err == nil {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	for _, want := range []string{
		`pneuma_http_requests_total{route="search",code="200"} 1`,
		`pneuma_http_requests_total{route="search",code="400"} 1`,
		`pneuma_http_request_duration_seconds_count{route="search"} 2`,
		"pneuma_sched_accepted_total 1",
		"pneuma_sched_completed_total 1",
		"pneuma_sched_queue_depth 0",
		"pneuma_sched_in_flight 0",
		"pneuma_http_shed_total 0",
		"pneuma_retriever_documents",
		"pneuma_llm_calls_total",
		`pneuma_llm_tokens_total{direction="in"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestBadBodies: malformed JSON on every POST route answers 400 with the
// typed bad-query code, never a 500.
func TestBadBodies(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))
	ts, _ := newTestServer(t, Config{})

	for _, route := range []string{"/v1/sessions", "/v1/tables"} {
		resp := postJSON(t, ts.URL+route, "{not json")
		var errBody errorBody
		code := resp.StatusCode
		decodeBody(t, resp, &errBody)
		if code != http.StatusBadRequest || errBody.Code != "bad query" {
			t.Errorf("POST %s with garbage = %d code %q, want 400 bad query", route, code, errBody.Code)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/sessions", `{"user":"  "}`)
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusBadRequest {
		t.Errorf("blank user = %d, want 400", code)
	}
}
