package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"pneuma"
	"pneuma/internal/leakcheck"
	"pneuma/internal/llm"
)

// gatedModel wraps the deterministic SimModel with a gate: the first
// Complete call blocks until the gate opens (or its ctx fires), then every
// call delegates. It lets the drain test hold a request genuinely
// in-flight — the SimModel itself simulates latency without sleeping, so
// without the gate no request stays in flight long enough to drain.
type gatedModel struct {
	inner   llm.Model
	entered chan struct{} // one tick per Complete call that reached the gate
	gate    chan struct{} // closed to let calls proceed
}

func newGatedModel() *gatedModel {
	return &gatedModel{
		inner:   llm.NewSimModel(),
		entered: make(chan struct{}, 64),
		gate:    make(chan struct{}),
	}
}

func (m *gatedModel) Name() string      { return m.inner.Name() }
func (m *gatedModel) ContextLimit() int { return m.inner.ContextLimit() }

func (m *gatedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	select {
	case m.entered <- struct{}{}:
	default:
	}
	select {
	case <-m.gate:
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
	return m.inner.Complete(ctx, req)
}

// TestGracefulDrain exercises the whole SIGTERM sequence through Run: an
// in-flight turn keeps running after the drain starts and completes with
// 200; requests arriving during the drain answer 503 with Retry-After;
// /readyz flips to 503 while /healthz stays 200; Run returns cleanly; and
// nothing leaks.
func TestGracefulDrain(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))

	model := newGatedModel()
	svc, err := pneuma.New(pneuma.ArchaeologyDataset(), pneuma.WithModel(model))
	if err != nil {
		t.Fatal(err)
	}
	// Run closes the Service itself; no cleanup close here.

	srv, err := New(Config{Service: svc, DrainTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx, ln) }()

	client := &http.Client{}
	t.Cleanup(client.CloseIdleConnections)

	resp, err := client.Post(base+"/v1/sessions", "application/json", strings.NewReader(`{"user":"drain"}`))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	decodeBody(t, resp, &created)

	// Hold one turn in flight: the gated model blocks its first LLM call.
	sendStatus := make(chan int, 1)
	go func() {
		resp, err := client.Post(base+"/v1/sessions/"+created.SessionID+"/messages",
			"application/json", strings.NewReader(`{"message":"What tables describe soil samples?"}`))
		if err != nil {
			sendStatus <- -1
			return
		}
		resp.Body.Close()
		sendStatus <- resp.StatusCode
	}()
	select {
	case <-model.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight turn never reached the model")
	}

	// SIGTERM: the daemon cancels Run's context.
	cancel()

	// The drain must become observable while the turn is still in flight.
	readyDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("readyz during drain: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(readyDeadline) {
			t.Fatal("/readyz never flipped to 503 after the drain began")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200 (alive, just not ready)", resp.StatusCode)
	}

	resp, err = client.Get(base + "/v1/search?q=soil")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("API request during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 missing the Retry-After header")
	}
	var errBody errorBody
	decodeBody(t, resp, &errBody)
	if errBody.Code != "closed" {
		t.Errorf("drain rejection code = %q, want closed", errBody.Code)
	}

	// The in-flight turn must still be running — not canceled by the drain.
	select {
	case status := <-sendStatus:
		t.Fatalf("in-flight turn finished with %d before the gate opened — drain did not wait", status)
	default:
	}

	// Open the gate: the turn completes normally and Run unwinds.
	close(model.gate)
	select {
	case status := <-sendStatus:
		if status != http.StatusOK {
			t.Errorf("in-flight turn during drain = %d, want 200", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight turn never completed after the gate opened")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("Run returned %v after a clean drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned after the drain")
	}

	// The Service is closed: direct use reports ErrClosed.
	if _, err := svc.Search(context.Background(), "soil", 1); !errors.Is(err, pneuma.ErrClosed) {
		t.Errorf("post-drain Search = %v, want ErrClosed", err)
	}
}

// TestRunListenerFailure: when the listener dies on its own (closed under
// Run), Run reports the serve error and still closes the Service.
func TestRunListenerFailure(t *testing.T) {
	t.Cleanup(leakcheck.Check(t))

	svc, err := pneuma.New(pneuma.ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(context.Background(), ln) }()
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-runErr:
		if err == nil {
			t.Error("Run returned nil after its listener died")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned after its listener closed")
	}
	if _, err := svc.Search(context.Background(), "soil", 1); !errors.Is(err, pneuma.ErrClosed) {
		t.Errorf("Service not closed after listener failure: %v", err)
	}
}
