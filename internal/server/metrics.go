package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"pneuma"
)

// latencyBuckets are the histogram upper bounds in seconds — log-spaced
// from 1ms to 10s, wide enough for both sub-millisecond searches and
// multi-second Seeker turns.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram in Prometheus semantics:
// counts[i] is the number of observations ≤ buckets[i], rendered
// cumulatively with the +Inf bucket equal to count.
type histogram struct {
	counts []uint64
	sum    float64
	count  uint64
}

func (h *histogram) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets))
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
}

// metrics is the server's request-level instrument set: per-route/status
// counters and per-route latency histograms, one mutex over the lot.
// Request rates here are HTTP-scale (the work behind each request dwarfs a
// map update), so a single lock beats per-metric atomics on simplicity
// without measurable contention.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // route → status → count
	latency  map[string]*histogram     // route → histogram
	shed     uint64                    // requests rejected by the estimated-wait shedder
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]uint64),
		latency:  make(map[string]*histogram),
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, status int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[route]
	if !ok {
		byStatus = make(map[int]uint64)
		m.requests[route] = byStatus
	}
	byStatus[status]++
	h, ok := m.latency[route]
	if !ok {
		h = &histogram{}
		m.latency[route] = h
	}
	h.observe(seconds)
}

// observeShed counts one request rejected before admission by the
// estimated-wait shedder.
func (m *metrics) observeShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// render writes the whole exposition — request metrics plus everything in
// the Service's Stats snapshot — in Prometheus text format (version
// 0.0.4), the format every scraper speaks, with no dependency beyond the
// standard library.
func (m *metrics) render(w io.Writer, stats pneuma.ServiceStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP pneuma_http_requests_total Finished HTTP requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE pneuma_http_requests_total counter\n")
	for _, route := range sortedKeys(m.requests) {
		byStatus := m.requests[route]
		codes := make([]int, 0, len(byStatus))
		for c := range byStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "pneuma_http_requests_total{route=%q,code=%q} %d\n",
				route, strconv.Itoa(c), byStatus[c])
		}
	}

	fmt.Fprintf(w, "# HELP pneuma_http_request_duration_seconds HTTP request latency by route.\n")
	fmt.Fprintf(w, "# TYPE pneuma_http_request_duration_seconds histogram\n")
	for _, route := range sortedKeys(m.latency) {
		h := m.latency[route]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			if h.counts != nil {
				cum = h.counts[i]
			}
			fmt.Fprintf(w, "pneuma_http_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				route, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		fmt.Fprintf(w, "pneuma_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, h.count)
		fmt.Fprintf(w, "pneuma_http_request_duration_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(w, "pneuma_http_request_duration_seconds_count{route=%q} %d\n", route, h.count)
	}

	fmt.Fprintf(w, "# HELP pneuma_http_shed_total Requests rejected by the estimated-wait load shedder before admission.\n")
	fmt.Fprintf(w, "# TYPE pneuma_http_shed_total counter\n")
	fmt.Fprintf(w, "pneuma_http_shed_total %d\n", m.shed)

	sched := stats.Scheduler
	writeGauge(w, "pneuma_sched_queue_depth", "Requests waiting for a scheduler slot right now.", float64(sched.QueueDepth))
	writeGauge(w, "pneuma_sched_in_flight", "Requests holding a scheduler slot right now.", float64(sched.InFlight))
	writeGauge(w, "pneuma_sched_max_concurrent", "Scheduler slot count (WithMaxConcurrent).", float64(sched.MaxConcurrent))
	writeGauge(w, "pneuma_sched_max_queue", "Scheduler wait-queue bound (WithMaxQueue); 0 = unbounded.", float64(sched.MaxQueue))
	writeCounter(w, "pneuma_sched_accepted_total", "Requests admitted to a scheduler slot.", float64(sched.Accepted))
	writeCounter(w, "pneuma_sched_rejected_total", "Requests shed with ErrOverloaded by the scheduler queue bound.", float64(sched.Rejected))
	writeCounter(w, "pneuma_sched_canceled_total", "Requests whose context fired before admission.", float64(sched.Canceled))
	writeCounter(w, "pneuma_sched_completed_total", "Admitted requests that released their slot.", float64(sched.Completed))
	writeCounter(w, "pneuma_sched_queue_wait_seconds_total", "Total time accepted requests spent waiting for a slot.", sched.QueueWait.Seconds())
	writeCounter(w, "pneuma_sched_busy_seconds_total", "Total time admitted requests held a slot.", sched.Busy.Seconds())

	writeGauge(w, "pneuma_retriever_documents", "Live documents in the table index.", float64(stats.Tables.Documents))
	writeCounter(w, "pneuma_retriever_mutations_total", "Table-index mutation version (Add/Delete batches).", float64(stats.Tables.Version))
	writeCounter(w, "pneuma_retriever_fsyncs_total", "Segment-file fsyncs across all disk shards.", float64(stats.Tables.Fsyncs))
	writeCounter(w, "pneuma_retriever_compaction_runs_total", "Completed segment-compaction rewrites.", float64(stats.Tables.Compaction.Runs))
	writeCounter(w, "pneuma_retriever_compaction_reclaimed_total", "Dead records removed by compaction.", float64(stats.Tables.Compaction.Reclaimed))
	writeGauge(w, "pneuma_retriever_compaction_max_stall_seconds", "Longest writer stall any compaction phase inflicted.", stats.Tables.Compaction.MaxStall.Seconds())

	writeCounter(w, "pneuma_llm_calls_total", "Completed LLM calls across all sessions.", float64(stats.Meter.Calls))
	fmt.Fprintf(w, "# HELP pneuma_llm_tokens_total LLM tokens by direction across all sessions.\n")
	fmt.Fprintf(w, "# TYPE pneuma_llm_tokens_total counter\n")
	fmt.Fprintf(w, "pneuma_llm_tokens_total{direction=\"in\"} %d\n", stats.Meter.Total.InTokens)
	fmt.Fprintf(w, "pneuma_llm_tokens_total{direction=\"out\"} %d\n", stats.Meter.Total.OutTokens)
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func writeCounter(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
