package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pneuma"
	"pneuma/internal/pnerr"
)

// Config assembles a Server over an existing Service. Zero values select
// the defaults noted on each field; Service is the only required field.
type Config struct {
	// Service is the serving facade the HTTP layer fronts. Required.
	Service *pneuma.Service
	// DefaultTimeout is the per-request deadline applied when the request
	// carries no ?timeout parameter (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested ?timeout values so one client
	// cannot hold a scheduler slot arbitrarily long (default 2m).
	MaxTimeout time.Duration
	// DrainTimeout bounds how long Run waits for in-flight requests after
	// its context is canceled before forcing shutdown (default 10s).
	DrainTimeout time.Duration
	// DrainLinger keeps the listener answering (with 503s) for at least
	// this long after the drain begins, even once idle, so load balancers
	// polling /readyz observe the not-ready state before the socket
	// disappears (default 0: shut down as soon as in-flight work ends).
	DrainLinger time.Duration
	// MaxEstimatedWait sheds requests with 503 before they enqueue when
	// the scheduler's projected queue wait exceeds it (default 0:
	// disabled; the scheduler's own WithMaxQueue depth bound still
	// applies).
	MaxEstimatedWait time.Duration
	// RetryAfter is the Retry-After hint stamped on every 503 (default
	// 1s).
	RetryAfter time.Duration
}

// Server is the HTTP front end: a handler tree over one pneuma.Service
// plus the drain state machine Run drives. Create with New, serve with
// Run (or mount Handler on an existing http.Server for tests).
type Server struct {
	svc      *pneuma.Service
	cfg      Config
	mux      *http.ServeMux
	met      *metrics
	draining atomic.Bool
	inflight sync.WaitGroup

	sessions sync.Map // session id → *pneuma.ServiceSession
	nextID   atomic.Uint64
}

// New validates the config, fills defaults and builds the route tree.
func New(cfg Config) (*Server, error) {
	if cfg.Service == nil {
		return nil, errors.New("server: Config.Service is required")
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.DefaultTimeout > cfg.MaxTimeout {
		cfg.DefaultTimeout = cfg.MaxTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{svc: cfg.Service, cfg: cfg, mux: http.NewServeMux(), met: newMetrics()}
	s.routes()
	return s, nil
}

// routes mounts the handler tree. API routes go through the api wrapper
// (drain rejection, shedding, deadline, metrics); operational routes stay
// reachable while draining.
func (s *Server) routes() {
	s.mux.Handle("POST /v1/sessions", s.api("create_session", s.handleCreateSession))
	s.mux.Handle("DELETE /v1/sessions/{id}", s.api("close_session", s.handleCloseSession))
	s.mux.Handle("POST /v1/sessions/{id}/messages", s.api("send", s.handleSend))
	s.mux.Handle("GET /v1/search", s.api("search", s.handleSearch))
	s.mux.Handle("POST /v1/tables", s.api("add_tables", s.handleAddTables))
	s.mux.Handle("DELETE /v1/tables", s.api("delete_tables", s.handleDeleteTables))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler exposes the route tree for mounting on any http.Server
// (httptest in the package's own tests, the daemon's server in Run).
func (s *Server) Handler() http.Handler { return s.mux }

// statusRecorder captures the final status for the request counter while
// passing Flush through, which SSE streaming needs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// api wraps one API handler with the serving policy: reject while
// draining, shed on projected queue wait, attach the per-request deadline,
// track in-flight work for the drain, and record the request metrics.
func (s *Server) api(route string, h func(http.ResponseWriter, *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			s.met.observe(route, rec.status, time.Since(start).Seconds())
		}()

		if s.draining.Load() {
			s.writeError(rec, pnerr.Closed("server: draining"))
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()

		if max := s.cfg.MaxEstimatedWait; max > 0 {
			if wait := s.svc.SchedulerStats().EstimatedWait(); wait > max {
				s.met.observeShed()
				s.writeError(rec, pnerr.Overloaded("server: estimated wait "+wait.String()))
				return
			}
		}

		ctx, cancel, err := s.reqContext(r)
		if err != nil {
			s.writeError(rec, err)
			return
		}
		defer cancel()

		if err := h(rec, r.WithContext(ctx)); err != nil {
			s.writeError(rec, err)
		}
	})
}

// reqContext derives the request's context: the ?timeout parameter
// (clamped by MaxTimeout, defaulting to DefaultTimeout) layered on the
// client connection's own lifetime, so both the server's bound and the
// client hanging up cancel the work.
func (s *Server) reqContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		parsed, err := time.ParseDuration(raw)
		if err != nil || parsed <= 0 {
			return nil, nil, pnerr.BadQueryf("server: request", "invalid timeout %q", raw)
		}
		d = min(parsed, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// writeError renders err through the status mapping: JSON envelope, typed
// code, Retry-After on the 503 family.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := Status(err)
	w.Header().Set("Content-Type", "application/json")
	if Retryable(err) {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Round(time.Second)/time.Second)))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Code: string(pnerr.CodeOf(err))})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// wireDoc is the over-the-wire projection of a retrieval document: the
// identity and score plus a rendered summary, never the raw table payload
// (which can be arbitrarily large and, under WithMmap, must not outlive
// the Service).
type wireDoc struct {
	ID      string  `json:"id"`
	Kind    string  `json:"kind"`
	Title   string  `json:"title"`
	Source  string  `json:"source"`
	Score   float64 `json:"score"`
	Summary string  `json:"summary"`
}

func toWireDocs(ds []pneuma.Document) []wireDoc {
	out := make([]wireDoc, len(ds))
	for i := range ds {
		d := &ds[i]
		out[i] = wireDoc{
			ID:      d.ID,
			Kind:    string(d.Kind),
			Title:   d.Title,
			Source:  d.Source,
			Score:   d.Score,
			Summary: d.Summary(2),
		}
	}
	return out
}

// handleCreateSession starts a conversation: {"user": "alice"} → 201 with
// the session id the other session routes address.
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		User string `json:"user"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return pnerr.BadQueryf("server: create session", "invalid JSON body: %v", err)
	}
	if strings.TrimSpace(req.User) == "" {
		return pnerr.BadQueryf("server: create session", "user is required")
	}
	id := fmt.Sprintf("s-%d", s.nextID.Add(1))
	s.sessions.Store(id, s.svc.NewSession(req.User))
	writeJSON(w, http.StatusCreated, map[string]string{"session_id": id, "user": req.User})
	return nil
}

// handleCloseSession forgets a session's server-side state. The Service
// holds no per-session resources beyond the conversation state, so this
// is pure bookkeeping — but without it a long-lived daemon would leak one
// conversation per client forever.
func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if _, ok := s.sessions.LoadAndDelete(id); !ok {
		return pnerr.BadQueryf("server: close session", "unknown session %q", id)
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// session resolves a session route's {id}.
func (s *Server) session(r *http.Request) (*pneuma.ServiceSession, error) {
	id := r.PathValue("id")
	v, ok := s.sessions.Load(id)
	if !ok {
		return nil, pnerr.BadQueryf("server: session", "unknown session %q", id)
	}
	return v.(*pneuma.ServiceSession), nil
}

// sendResponse is the JSON envelope of one completed turn.
type sendResponse struct {
	Reply    pneuma.Reply `json:"reply"`
	Degraded string       `json:"degraded,omitempty"`
}

// handleSend delivers one user message: {"message": "..."} → the turn's
// Reply. With ?stream=sse (or Accept: text/event-stream) the turn streams
// as server-sent events — accepted on admission, working heartbeats while
// the Seeker runs, then one reply or error event — so long turns deliver
// progress incrementally instead of a silent multi-second hang.
func (s *Server) handleSend(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.session(r)
	if err != nil {
		return err
	}
	var req struct {
		Message string `json:"message"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return pnerr.BadQueryf("server: send", "invalid JSON body: %v", err)
	}
	if strings.TrimSpace(req.Message) == "" {
		return pnerr.BadQueryf("server: send", "message is required")
	}
	if wantsSSE(r) {
		return s.streamSend(w, r, sess, req.Message)
	}
	reply, err := sess.Send(r.Context(), req.Message)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, sendResponse{Reply: reply})
	return nil
}

func wantsSSE(r *http.Request) bool {
	return r.URL.Query().Get("stream") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// sseHeartbeat paces the working events of a streamed turn.
const sseHeartbeat = 500 * time.Millisecond

// streamSend runs the turn concurrently with an SSE event stream. Errors
// after the 200 header travel in-band as an error event carrying the same
// status code the JSON path would have used.
func (s *Server) streamSend(w http.ResponseWriter, r *http.Request, sess *pneuma.ServiceSession, msg string) error {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return pnerr.BadQueryf("server: send", "connection does not support streaming")
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeEvent(w, "accepted", map[string]any{"queue_depth": s.svc.SchedulerStats().QueueDepth})
	flusher.Flush()

	type outcome struct {
		reply pneuma.Reply
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		reply, err := sess.Send(r.Context(), msg)
		done <- outcome{reply, err}
	}()

	ticker := time.NewTicker(sseHeartbeat)
	defer ticker.Stop()
	start := time.Now()
	for {
		select {
		case out := <-done:
			if out.err != nil {
				writeEvent(w, "error", errorEvent(out.err))
			} else {
				writeEvent(w, "reply", sendResponse{Reply: out.reply})
			}
			flusher.Flush()
			return nil
		case <-ticker.C:
			writeEvent(w, "working", map[string]any{
				"elapsed_ms": time.Since(start).Milliseconds(),
				"in_flight":  s.svc.SchedulerStats().InFlight,
			})
			flusher.Flush()
		}
	}
}

// errorEvent is the in-band SSE rendering of a failed turn: the JSON
// error envelope plus the status the non-streamed path would have sent.
func errorEvent(err error) map[string]any {
	return map[string]any{
		"error":  err.Error(),
		"code":   string(pnerr.CodeOf(err)),
		"status": Status(err),
	}
}

// writeEvent emits one SSE event with a JSON data payload.
func writeEvent(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// searchResponse is the JSON envelope of one retrieval request. Degraded
// carries the per-source failure detail of a partially answered query;
// the X-Pneuma-Degraded header flags it without parsing the body.
type searchResponse struct {
	Documents []wireDoc `json:"documents"`
	Degraded  string    `json:"degraded,omitempty"`
}

// handleSearch runs one retrieval: ?q= (required), &k= (default 5),
// &sources=tables,knowledge,web (default all). A partially failed query
// returns 200 with the surviving fusion and the degraded marker.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query().Get("q")
	k := 5
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed <= 0 {
			return pnerr.BadQueryf("server: search", "invalid k %q", raw)
		}
		k = parsed
	}
	var sources []string
	if raw := r.URL.Query().Get("sources"); raw != "" {
		sources = strings.Split(raw, ",")
	}
	docs, err := s.svc.SearchIn(r.Context(), q, k, sources...)
	if err != nil && !errors.Is(err, pnerr.ErrDegraded) {
		return err
	}
	resp := searchResponse{Documents: toWireDocs(docs)}
	if err != nil {
		resp.Degraded = err.Error()
		w.Header().Set("X-Pneuma-Degraded", "true")
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// wireTable is one table shipped over the wire as CSV — the same format
// the loaders speak (header row first, types inferred), so a curl of a
// .csv file body indexes directly.
type wireTable struct {
	Name string `json:"name"`
	CSV  string `json:"csv"`
}

// handleAddTables streams new tables into the live index: a JSON array of
// {"name","csv"} objects. Searches keep serving while the ingest runs;
// the new tables become visible as the shard writers publish.
func (s *Server) handleAddTables(w http.ResponseWriter, r *http.Request) error {
	var req []wireTable
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return pnerr.BadQueryf("server: add tables", "invalid JSON body: %v", err)
	}
	if len(req) == 0 {
		return pnerr.BadQueryf("server: add tables", "no tables in request")
	}
	tables := make([]*pneuma.Table, len(req))
	for i, wt := range req {
		if strings.TrimSpace(wt.Name) == "" {
			return pnerr.BadQueryf("server: add tables", "table %d has no name", i)
		}
		t, err := pneuma.ReadCSV(wt.Name, strings.NewReader(wt.CSV))
		if err != nil {
			return pnerr.BadQueryf("server: add tables", "table %q: %v", wt.Name, err)
		}
		tables[i] = t
	}
	if err := s.svc.AddTables(r.Context(), tables...); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]int{"added": len(tables)})
	return nil
}

// handleDeleteTables removes tables by name: {"names": [...]} → how many
// were present. In-flight queries may still surface a just-deleted table
// from their pinned views; queries admitted afterwards do not.
func (s *Server) handleDeleteTables(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		Names []string `json:"names"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return pnerr.BadQueryf("server: delete tables", "invalid JSON body: %v", err)
	}
	if len(req.Names) == 0 {
		return pnerr.BadQueryf("server: delete tables", "no names in request")
	}
	n, err := s.svc.DeleteTables(r.Context(), req.Names...)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]int{"deleted": n})
	return nil
}

// handleHealthz is liveness: 200 for as long as the process can answer,
// including the whole drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while admitting, 503 once draining so
// load balancers stop routing here before the listener disappears.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics renders the Prometheus exposition from one Stats
// snapshot. It stays reachable while draining — the final scrape is the
// one that shows the drain.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, s.svc.Stats())
}

// Run serves on the listener until ctx is canceled (the daemon wires
// SIGTERM/SIGINT to it), then executes the graceful drain: flip to
// draining (new API requests 503, /readyz 503), wait out in-flight
// requests up to DrainTimeout (plus DrainLinger for load balancers), shut
// the HTTP server down, and finally Close the Service so disk-backed
// indexes flush. The returned error joins the serve, shutdown and close
// failures; a clean drain returns nil.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		err := hs.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		serveErr <- err
	}()

	select {
	case err := <-serveErr:
		// The listener failed on its own; release the index and report.
		return errors.Join(err, s.svc.Close())
	case <-ctx.Done():
	}

	drainStart := time.Now()
	s.draining.Store(true)
	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.cfg.DrainTimeout):
	}
	if linger := s.cfg.DrainLinger - time.Since(drainStart); linger > 0 {
		time.Sleep(linger)
	}

	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	shutdownErr := hs.Shutdown(sctx)
	return errors.Join(shutdownErr, s.svc.Close(), <-serveErr)
}
