package embed

import (
	"math"
	"testing"
	"testing/quick"

	"pneuma/internal/vecmath"
)

func TestDeterministic(t *testing.T) {
	e := New()
	a := e.Embed("procurement prices from german suppliers")
	b := e.Embed("procurement prices from german suppliers")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding is not deterministic")
		}
	}
}

func TestUnitNorm(t *testing.T) {
	e := New()
	v := e.Embed("potassium concentration samples")
	n := float64(vecmath.Norm(v))
	if math.Abs(n-1) > 1e-5 {
		t.Fatalf("norm = %v, want 1", n)
	}
}

func TestEmptyTextIsZeroVector(t *testing.T) {
	e := New()
	v := e.Embed("")
	if vecmath.Norm(v) != 0 {
		t.Fatal("empty text should embed to the zero vector")
	}
	if len(v) != DefaultDim {
		t.Fatalf("dim = %d, want %d", len(v), DefaultDim)
	}
}

func TestRelatedTextsCloserThanUnrelated(t *testing.T) {
	e := New()
	query := "potassium levels in soil samples"
	related := "soil sample chemistry: potassium, phosphorus, nitrogen measurements"
	unrelated := "quarterly revenue projections for the marketing department"
	simRel := e.Similarity(query, related)
	simUnrel := e.Similarity(query, unrelated)
	if simRel <= simUnrel {
		t.Fatalf("related sim %v must exceed unrelated sim %v", simRel, simUnrel)
	}
}

func TestMorphologicalOverlapViaNGrams(t *testing.T) {
	e := New()
	// Shared trigrams should make these closer than random words.
	sim := e.Similarity("tariffs", "tariff")
	other := e.Similarity("tariffs", "budget")
	if sim <= other {
		t.Fatalf("morphological variants %v should beat unrelated %v", sim, other)
	}
}

func TestWithDim(t *testing.T) {
	e := New(WithDim(64))
	if e.Dim() != 64 {
		t.Fatalf("dim = %d", e.Dim())
	}
	if len(e.Embed("x")) != 64 {
		t.Fatal("vector length mismatch")
	}
	// Non-positive dims fall back to the default.
	e = New(WithDim(-1))
	if e.Dim() != DefaultDim {
		t.Fatalf("dim = %d, want default", e.Dim())
	}
}

func TestEmbedFieldsWeighting(t *testing.T) {
	e := New()
	heavy := e.EmbedFields([]WeightedText{
		{Text: "tariffs", Weight: 5},
		{Text: "miscellaneous", Weight: 0.1},
	})
	probe := e.Embed("tariffs")
	sim := vecmath.Cosine(heavy, probe)
	light := e.EmbedFields([]WeightedText{
		{Text: "tariffs", Weight: 0.1},
		{Text: "miscellaneous", Weight: 5},
	})
	simLight := vecmath.Cosine(light, probe)
	if sim <= simLight {
		t.Fatalf("field weighting had no effect: %v vs %v", sim, simLight)
	}
	// Zero/negative weights are skipped.
	zero := e.EmbedFields([]WeightedText{{Text: "anything", Weight: 0}})
	if vecmath.Norm(zero) != 0 {
		t.Fatal("zero-weight fields must not contribute")
	}
}

func TestSimilarityBounded(t *testing.T) {
	e := New(WithNGram(0))
	f := func(a, b string) bool {
		s := float64(e.Similarity(a, b))
		return s >= -1.0001 && s <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	e := New()
	texts := []string{"potassium ppm", "supplier tariffs germany", "a b c d e"}
	for _, s := range texts {
		if sim := e.Similarity(s, s); math.Abs(float64(sim)-1) > 1e-5 {
			t.Errorf("self sim of %q = %v", s, sim)
		}
	}
}
