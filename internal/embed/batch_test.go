package embed

import (
	"context"
	"fmt"
	"testing"
)

// TestEmbedBatchMatchesSequential asserts the worker-pool path is
// bit-identical to sequential embedding for every worker count, including
// worker counts exceeding the batch size.
func TestEmbedBatchMatchesSequential(t *testing.T) {
	e := New()
	texts := make([]string, 37)
	for i := range texts {
		texts[i] = fmt.Sprintf("synthetic document %d about tariffs and potassium measure %d", i, i*i)
	}
	want := make([][]float32, len(texts))
	for i, s := range texts {
		want[i] = e.Embed(s)
	}
	for _, workers := range []int{0, 1, 2, 4, 64} {
		got, err := e.EmbedBatch(context.Background(), texts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i := range got {
			for d := range got[i] {
				if got[i][d] != want[i][d] {
					t.Fatalf("workers=%d: vector %d dim %d diverged", workers, i, d)
				}
			}
		}
	}
}

func TestEmbedAllEmpty(t *testing.T) {
	e := New()
	if got, err := e.EmbedAll(context.Background(), nil); err != nil || len(got) != 0 {
		t.Fatalf("EmbedAll(nil) = %v, %v", got, err)
	}
}

// TestEmbedFieldsBatchMatchesSequential covers the weighted multi-field
// batch path.
func TestEmbedFieldsBatchMatchesSequential(t *testing.T) {
	e := New()
	batch := make([][]WeightedText, 11)
	for i := range batch {
		batch[i] = []WeightedText{
			{Text: fmt.Sprintf("table_%d freight manifest", i), Weight: 2.0},
			{Text: "column descriptions for transit and tonnage", Weight: 1.0},
			{Text: "sample values", Weight: 0.5},
		}
	}
	want := make([][]float32, len(batch))
	for i, f := range batch {
		want[i] = e.EmbedFields(f)
	}
	got, err := e.EmbedFieldsBatch(context.Background(), batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		for d := range got[i] {
			if got[i][d] != want[i][d] {
				t.Fatalf("vector %d dim %d diverged", i, d)
			}
		}
	}
}

// TestEmbedBatchCanceled: a canceled context stops dispatch and returns
// ctx.Err() instead of a partial result.
func TestEmbedBatchCanceled(t *testing.T) {
	e := New()
	texts := make([]string, 100)
	for i := range texts {
		texts[i] = fmt.Sprintf("document %d", i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EmbedBatch(ctx, texts, 4); err == nil {
		t.Fatal("EmbedBatch with canceled ctx returned no error")
	}
	// Sequential path (workers=1) honors cancellation too.
	if _, err := e.EmbedBatch(ctx, texts, 1); err == nil {
		t.Fatal("sequential EmbedBatch with canceled ctx returned no error")
	}
}
