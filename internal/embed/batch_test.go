package embed

import (
	"fmt"
	"testing"
)

// TestEmbedBatchMatchesSequential asserts the worker-pool path is
// bit-identical to sequential embedding for every worker count, including
// worker counts exceeding the batch size.
func TestEmbedBatchMatchesSequential(t *testing.T) {
	e := New()
	texts := make([]string, 37)
	for i := range texts {
		texts[i] = fmt.Sprintf("synthetic document %d about tariffs and potassium measure %d", i, i*i)
	}
	want := make([][]float32, len(texts))
	for i, s := range texts {
		want[i] = e.Embed(s)
	}
	for _, workers := range []int{0, 1, 2, 4, 64} {
		got := e.EmbedBatch(texts, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i := range got {
			for d := range got[i] {
				if got[i][d] != want[i][d] {
					t.Fatalf("workers=%d: vector %d dim %d diverged", workers, i, d)
				}
			}
		}
	}
}

func TestEmbedAllEmpty(t *testing.T) {
	e := New()
	if got := e.EmbedAll(nil); len(got) != 0 {
		t.Fatalf("EmbedAll(nil) = %v", got)
	}
}

// TestEmbedFieldsBatchMatchesSequential covers the weighted multi-field
// batch path.
func TestEmbedFieldsBatchMatchesSequential(t *testing.T) {
	e := New()
	batch := make([][]WeightedText, 11)
	for i := range batch {
		batch[i] = []WeightedText{
			{Text: fmt.Sprintf("table_%d freight manifest", i), Weight: 2.0},
			{Text: "column descriptions for transit and tonnage", Weight: 1.0},
			{Text: "sample values", Weight: 0.5},
		}
	}
	want := make([][]float32, len(batch))
	for i, f := range batch {
		want[i] = e.EmbedFields(f)
	}
	got := e.EmbedFieldsBatch(batch, 3)
	for i := range got {
		for d := range got[i] {
			if got[i][d] != want[i][d] {
				t.Fatalf("vector %d dim %d diverged", i, d)
			}
		}
	}
}
