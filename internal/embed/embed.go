package embed

import (
	"context"
	"hash/fnv"
	"runtime"
	"sync"

	"pneuma/internal/textutil"
	"pneuma/internal/vecmath"
)

// DefaultDim is the embedding dimensionality used across the project. 256
// buckets keeps collisions rare for schema-sized vocabularies while staying
// cheap for HNSW distance evaluations.
const DefaultDim = 256

// Embedder hashes text into fixed-dimension unit vectors.
type Embedder struct {
	dim        int
	ngram      int
	tokenWt    float32
	ngramWt    float32
	normalized bool
}

// Option configures an Embedder.
type Option func(*Embedder)

// WithDim sets the vector dimensionality (default DefaultDim).
func WithDim(d int) Option {
	return func(e *Embedder) {
		if d > 0 {
			e.dim = d
		}
	}
}

// WithNGram sets the character n-gram width (default 3; 0 disables n-gram
// features).
func WithNGram(n int) Option {
	return func(e *Embedder) { e.ngram = n }
}

// New constructs an Embedder.
func New(opts ...Option) *Embedder {
	e := &Embedder{
		dim:        DefaultDim,
		ngram:      3,
		tokenWt:    1.0,
		ngramWt:    0.35,
		normalized: true,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Embed maps text to a unit vector. The zero vector is returned for text
// with no tokens.
func (e *Embedder) Embed(text string) []float32 {
	v := make([]float32, e.dim)
	tokens := textutil.NormalizeTokens(text)
	for _, tok := range tokens {
		e.add(v, "t:"+tok, e.tokenWt)
		if e.ngram > 0 {
			for _, g := range textutil.CharNGrams(tok, e.ngram) {
				e.add(v, "g:"+g, e.ngramWt)
			}
		}
	}
	if e.normalized {
		vecmath.Normalize(v)
	}
	return v
}

// EmbedFields embeds a weighted multi-field text (e.g. table name weighted
// above column names weighted above sample values). Fields with weight <= 0
// are skipped.
func (e *Embedder) EmbedFields(fields []WeightedText) []float32 {
	v := make([]float32, e.dim)
	for _, f := range fields {
		if f.Weight <= 0 {
			continue
		}
		for _, tok := range textutil.NormalizeTokens(f.Text) {
			e.add(v, "t:"+tok, e.tokenWt*float32(f.Weight))
			if e.ngram > 0 {
				for _, g := range textutil.CharNGrams(tok, e.ngram) {
					e.add(v, "g:"+g, e.ngramWt*float32(f.Weight))
				}
			}
		}
	}
	if e.normalized {
		vecmath.Normalize(v)
	}
	return v
}

// WeightedText is one field of a multi-field document with its weight.
type WeightedText struct {
	Text   string
	Weight float64
}

// EmbedBatch embeds texts with a worker pool of the given size (0 or
// negative means GOMAXPROCS). The result is positionally aligned with the
// input and bit-identical to embedding each text sequentially: each worker
// writes only its own output slot, so scheduling order cannot affect the
// vectors. This is the amortized path bulk ingest uses. A canceled ctx
// stops handing texts to the pool: already-started texts finish, un-started
// ones are abandoned, and ctx.Err() is returned.
func (e *Embedder) EmbedBatch(ctx context.Context, texts []string, workers int) ([][]float32, error) {
	out := make([][]float32, len(texts))
	if err := forEachParallel(ctx, len(texts), workers, func(i int) {
		out[i] = e.Embed(texts[i])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// EmbedAll is EmbedBatch with the default worker count (GOMAXPROCS).
func (e *Embedder) EmbedAll(ctx context.Context, texts []string) ([][]float32, error) {
	return e.EmbedBatch(ctx, texts, 0)
}

// EmbedFieldsBatch embeds many multi-field documents with a worker pool of
// the given size (0 or negative means GOMAXPROCS). Output is positionally
// aligned with the input, exactly as EmbedBatch; cancellation behaves the
// same way.
func (e *Embedder) EmbedFieldsBatch(ctx context.Context, batch [][]WeightedText, workers int) ([][]float32, error) {
	out := make([][]float32, len(batch))
	if err := forEachParallel(ctx, len(batch), workers, func(i int) {
		out[i] = e.EmbedFields(batch[i])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// forEachParallel runs fn(i) for i in [0,n) across a bounded worker pool.
// Indices are handed out through a channel, so work stays balanced even
// when individual items vary widely in cost. Cancellation is checked at
// each hand-off: remaining indices are never dispatched and ctx.Err() is
// returned after in-flight items drain.
func forEachParallel(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
			// Yield between items so a bulk embed never monopolizes the
			// scheduler against latency-sensitive goroutines (the same
			// reads-first pacing the index writers use); when nothing else
			// is runnable this costs ~100ns per item.
			runtime.Gosched()
		}
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
				runtime.Gosched() // reads-first pacing, as in the sequential path
			}
		}()
	}
	done := ctx.Done()
	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			err = ctx.Err()
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return err
}

// add hashes the feature into a bucket with a deterministic sign. Using a
// second hash bit for the sign keeps the expected dot-product contribution
// of colliding unrelated features at zero.
func (e *Embedder) add(v []float32, feature string, w float32) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(feature))
	sum := h.Sum64()
	bucket := int(sum % uint64(e.dim))
	if (sum>>63)&1 == 1 {
		w = -w
	}
	v[bucket] += w
}

// Similarity is a convenience wrapper returning the cosine similarity of the
// embeddings of two texts.
func (e *Embedder) Similarity(a, b string) float32 {
	return vecmath.Cosine(e.Embed(a), e.Embed(b))
}
