// Package embed implements a deterministic text embedding model based on
// feature hashing.
//
// The paper's Pneuma-Retriever uses neural sentence embeddings inside an
// HNSW vector store. Neural weights are unavailable offline, so this
// package substitutes a hashed bag-of-features embedder: every normalized
// token and every character trigram of every token is hashed (FNV-1a) into
// a fixed number of buckets with a signed contribution, then the vector is
// L2-normalized. Texts sharing vocabulary — or sharing word morphology via
// the trigrams — land near each other in cosine space, which is the
// property hybrid retrieval needs.
//
// # Determinism contract
//
// The model is fully deterministic, so every experiment is reproducible
// bit-for-bit. This extends to the batch paths the sharded retriever's
// bulk ingest uses: EmbedBatch and EmbedFieldsBatch run a bounded worker
// pool in which each worker writes only its own positionally-assigned
// output slot, so the result is bit-identical to embedding each text
// sequentially regardless of worker count or scheduling.
package embed
