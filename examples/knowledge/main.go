// Knowledge: the Document Database as an emergent documentation layer
// (§3.3, §5.2). One user externalizes a domain assumption during their
// session; a different user's later session retrieves it automatically —
// cross-user knowledge transfer.
package main

import (
	"fmt"
	"log"

	"pneuma"
)

func main() {
	corpus := pneuma.ArchaeologyDataset()
	kb := pneuma.NewKnowledgeDB()

	seeker, err := pneuma.NewSeeker(pneuma.Config{}, corpus, nil, kb)
	if err != nil {
		log.Fatal(err)
	}

	// User 1 externalizes tacit knowledge mid-conversation.
	alice := seeker.NewSession("alice")
	msgs := []string{
		"What is the average Potassium concentration for soil samples in the Malta region?",
		"Note that potassium values should be interpolated between samples; assume the measurements are linearly interpolated when values are missing.",
	}
	for _, m := range msgs {
		if _, err := alice.Send(m); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("After Alice's session, the Document Database holds %d note(s):\n", kb.Len())
	for _, n := range kb.All() {
		fmt.Printf("  [%s] %q\n", n.Author, n.Body)
	}

	// User 2 asks about the same topic: the captured knowledge surfaces in
	// their session context without Alice being involved.
	bob := seeker.NewSession("bob")
	if _, err := bob.Send("I want to analyze potassium measurements in soil samples across regions."); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBob's session automatically carries %d knowledge note(s):\n", len(bob.KnowledgeNotes))
	for _, n := range bob.KnowledgeNotes {
		fmt.Printf("  - %q\n", n)
	}

	// The notes are also searchable directly — organizational memory.
	hits, err := kb.Search("how should tariff or potassium assumptions be handled", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDirect knowledge search returned %d hit(s).\n", len(hits))
}
