// Knowledge: the Document Database as an emergent documentation layer
// (§3.3, §5.2). One user externalizes a domain assumption during their
// session; a different user's later session retrieves it automatically —
// cross-user knowledge transfer.
package main

import (
	"context"
	"fmt"
	"log"

	"pneuma"
)

func main() {
	ctx := context.Background()
	corpus := pneuma.ArchaeologyDataset()
	kb := pneuma.NewKnowledgeDB()

	svc, err := pneuma.New(corpus, pneuma.WithKnowledge(kb))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// User 1 externalizes tacit knowledge mid-conversation.
	alice := svc.NewSession("alice")
	msgs := []string{
		"What is the average Potassium concentration for soil samples in the Malta region?",
		"Note that potassium values should be interpolated between samples; assume the measurements are linearly interpolated when values are missing.",
	}
	for _, m := range msgs {
		if _, err := alice.Send(ctx, m); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("After Alice's session, the Document Database holds %d note(s):\n", kb.Len())
	for _, n := range kb.All() {
		fmt.Printf("  [%s] %q\n", n.Author, n.Body)
	}

	// User 2 asks about the same topic: the captured knowledge surfaces in
	// their session context without Alice being involved.
	bob := svc.NewSession("bob")
	if _, err := bob.Send(ctx, "I want to analyze potassium measurements in soil samples across regions."); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBob's session automatically carries %d knowledge note(s):\n", len(bob.Session().KnowledgeNotes))
	for _, n := range bob.Session().KnowledgeNotes {
		fmt.Printf("  - %q\n", n)
	}

	// The notes are also searchable directly — organizational memory.
	hits, err := kb.Search(ctx, "how should tariff or potassium assumptions be handled", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDirect knowledge search returned %d hit(s).\n", len(hits))
}
