// Archaeology: a full simulated convergence session on the paper's Maltese
// potassium question (§4), showing the LLM Sim user, the evolving state
// (T, Q), and the convergence outcome.
package main

import (
	"context"
	"fmt"
	"log"

	"pneuma"
	"pneuma/internal/harness"
	"pneuma/internal/llm"
)

func main() {
	corpus := pneuma.ArchaeologyDataset()
	questions := pneuma.ArchaeologyQuestions(corpus)

	// A5 is the paper's running benchmark example.
	var q pneuma.Question
	for _, c := range questions {
		if c.ID == "A5" {
			q = c
		}
	}
	fmt.Printf("Latent information need (hidden from the system):\n  %s\n  ground truth: %s\n\n",
		q.Need.QuestionText, q.Answer)

	sys, err := harness.NewSeekerSystem(corpus, nil)
	if err != nil {
		log.Fatal(err)
	}
	sim := llm.NewSimModel(llm.WithProfile("gpt-4o"))
	res, err := harness.RunConversation(context.Background(), sys, q, sim, harness.DefaultMaxTurns)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range res.Transcript {
		fmt.Printf("--- turn %d ---\nUSER: %s\nSYSTEM: %s\n\n", i+1, e.User, e.System)
	}
	fmt.Printf("converged=%v turns=%d system answer=%q oracle answer=%q\n",
		res.Converged, res.Turns, res.FinalAnswer, q.Answer)
	fmt.Println("\n(The conversation converges — the user fully articulated the latent need —")
	fmt.Println("but the computed value differs from the oracle: the intended semantics anchor")
	fmt.Println("the first/last times in occupation_records, a gap RQ2 counts against accuracy.)")
}
