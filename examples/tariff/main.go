// Tariff: the paper's running example (§1, §3.6). A finance analyst asks
// about tariff impact; the system discovers that tariff data is missing
// from the internal procurement tables, retrieves a tariff schedule through
// Web Search, integrates it with procurement data, and computes the impact
// relative to the previously active tariff after the user clarifies that
// that is what "impact" means.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pneuma"
	"pneuma/internal/table"
	"pneuma/internal/value"
)

// procurementCorpus builds a small internal procurement database: the data
// an organization would have, which notably lacks tariff rates.
func procurementCorpus() map[string]*pneuma.Table {
	rng := rand.New(rand.NewSource(7))
	proc := table.New(table.Schema{
		Name:        "procurement_records",
		Description: "Purchases of equipment and supplies from international suppliers",
		Columns: []table.Column{
			{Name: "purchase_id", Type: value.KindInt, Description: "Purchase identifier"},
			{Name: "supplier_id", Type: value.KindInt, Description: "Supplier identifier"},
			{Name: "item", Type: value.KindString, Description: "Purchased item"},
			{Name: "category", Type: value.KindString, Description: "Goods category"},
			{Name: "country", Type: value.KindString, Description: "Supplier country"},
			{Name: "price", Type: value.KindFloat, Description: "Purchase price in USD", Unit: "usd"},
			{Name: "quantity", Type: value.KindInt, Description: "Units purchased"},
		},
	})
	items := []struct{ item, cat, country string }{
		{"microscope", "lab equipment", "Germany"},
		{"centrifuge", "lab equipment", "Germany"},
		{"lathe", "machinery", "Germany"},
		{"oscilloscope", "electronics", "Japan"},
		{"pipette set", "lab equipment", "France"},
		{"router", "electronics", "China"},
	}
	for i := 0; i < 400; i++ {
		it := items[rng.Intn(len(items))]
		proc.MustAppend(table.Row{
			value.Int(int64(i + 1)),
			value.Int(int64(100 + rng.Intn(40))),
			value.String(it.item),
			value.String(it.cat),
			value.String(it.country),
			value.Float(200 + rng.Float64()*4800),
			value.Int(int64(1 + rng.Intn(20))),
		})
	}
	suppliers := table.New(table.Schema{
		Name:        "suppliers",
		Description: "Supplier registry",
		Columns: []table.Column{
			{Name: "supplier_id", Type: value.KindInt, Description: "Supplier identifier"},
			{Name: "supplier_name", Type: value.KindString, Description: "Supplier name"},
			{Name: "country", Type: value.KindString, Description: "Country of origin"},
		},
	})
	names := []string{"Acme GmbH", "Orion SARL", "Kita KK", "Delta Ltd"}
	countries := []string{"Germany", "France", "Japan", "China"}
	for i := 0; i < 40; i++ {
		suppliers.MustAppend(table.Row{
			value.Int(int64(100 + i)),
			value.String(fmt.Sprintf("%s %d", names[i%len(names)], i)),
			value.String(countries[i%len(countries)]),
		})
	}
	return map[string]*pneuma.Table{
		proc.Schema.Name:      proc,
		suppliers.Schema.Name: suppliers,
	}
}

func main() {
	ctx := context.Background()
	// Web Search is ENABLED here (it is disabled only for benchmarks): the
	// built-in synthetic web corpus includes the 2026 tariff schedule.
	kb := pneuma.NewKnowledgeDB()
	svc, err := pneuma.New(procurementCorpus(),
		pneuma.WithWebSearch(pneuma.NewWebSearch()),
		pneuma.WithKnowledge(kb),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	sess := svc.NewSession("finance-analyst")

	for _, msg := range []string{
		// The paper's opening question, made price-concrete.
		"We import a lot of equipment. What is the average price of our procurement records from the Germany country suppliers?",
		// The paper's key clarification: impact relative to the previous
		// active tariff — externalized knowledge that gets captured.
		"Impact should be calculated relative to the previous active tariff, not just the current rate. What is the average price of procurement records from Germany relative to the previous tariff?",
	} {
		fmt.Printf(">>> %s\n\n", msg)
		reply, err := sess.Send(ctx, msg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(reply.Message)
		fmt.Println()
	}

	fmt.Println(sess.Session().State.View())

	// The clarification was captured as organizational knowledge (§3.3):
	// future tariff conversations — by anyone — retrieve it.
	fmt.Printf("Knowledge notes captured: %d\n", kb.Len())
	for _, n := range kb.All() {
		fmt.Printf("  [%s] %s\n", n.Author, n.Body)
	}
}
