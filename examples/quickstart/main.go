// Quickstart: assemble Pneuma-Seeker over a small corpus, ask a question in
// plain language, and watch the shared state (T, Q) converge to an answer.
package main

import (
	"context"
	"fmt"
	"log"

	"pneuma"
)

func main() {
	ctx := context.Background()
	// The synthetic archaeology benchmark dataset (5 tables).
	corpus := pneuma.ArchaeologyDataset()

	// New assembles the concurrency-safe serving facade; options replace
	// the old Config/RetrieverKnobs split (none needed for defaults).
	svc, err := pneuma.New(corpus)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	sess := svc.NewSession("quickstart-user")

	// One vague opener, then a concrete question — the Conductor retrieves,
	// defines (T, Q), materializes T, executes Q and reports.
	for _, msg := range []string{
		"Could you give me an overview of the soil chemistry data we have for the Malta region?",
		"What is the average organic matter percentage for soil samples in the Malta region? Round your answer to 4 decimal places.",
	} {
		fmt.Printf(">>> %s\n\n", msg)
		reply, err := sess.Send(ctx, msg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(reply.Message)
		fmt.Println()
	}

	// The state view (the paper's Figure 2, box 3).
	state := sess.Session().State
	fmt.Println(state.View())
	if ans, ok := state.Answer(); ok {
		fmt.Printf("Final answer: %s\n", ans)
	}
}
