// Quickstart: assemble Pneuma-Seeker over a small corpus, ask a question in
// plain language, and watch the shared state (T, Q) converge to an answer.
package main

import (
	"fmt"
	"log"

	"pneuma"
)

func main() {
	// The synthetic archaeology benchmark dataset (5 tables).
	corpus := pneuma.ArchaeologyDataset()

	seeker, err := pneuma.NewSeeker(pneuma.Config{}, corpus, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	sess := seeker.NewSession("quickstart-user")

	// One vague opener, then a concrete question — the Conductor retrieves,
	// defines (T, Q), materializes T, executes Q and reports.
	for _, msg := range []string{
		"Could you give me an overview of the soil chemistry data we have for the Malta region?",
		"What is the average organic matter percentage for soil samples in the Malta region? Round your answer to 4 decimal places.",
	} {
		fmt.Printf(">>> %s\n\n", msg)
		reply, err := sess.Send(msg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(reply.Message)
		fmt.Println()
	}

	// The state view (the paper's Figure 2, box 3).
	fmt.Println(sess.State.View())
	if ans, ok := sess.State.Answer(); ok {
		fmt.Printf("Final answer: %s\n", ans)
	}
}
