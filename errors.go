package pneuma

import (
	"pneuma/internal/pnerr"
)

// Error is the typed error of the serving API. Every failure crossing the
// public surface — Service.Search, Session.Send, retriever and IR System
// calls — wraps one, so callers dispatch with the standard library instead
// of matching message strings:
//
//	_, err := sess.Send(ctx, msg)
//	switch {
//	case errors.Is(err, pneuma.ErrCanceled):  // request canceled / deadline
//	case errors.Is(err, pneuma.ErrBadQuery):  // malformed request, don't retry
//	case errors.Is(err, pneuma.ErrClosed):    // service shut down
//	}
//
// errors.As(err, &pe) with pe *pneuma.Error exposes the failing operation
// (pe.Op) and the cause chain (pe.Err, possibly an errors.Join of
// per-source failures). errors.Is(err, context.Canceled) also holds for
// canceled requests, because the context error stays in the chain.
type Error = pnerr.Error

// ErrorCode classifies an Error; the constants below are the vocabulary.
// ErrorCode implements error, so the constants double as errors.Is
// sentinels.
type ErrorCode = pnerr.Code

// The typed error vocabulary of the serving API.
const (
	// ErrCanceled: the request's context was canceled or its deadline
	// expired; partial work was abandoned.
	ErrCanceled = pnerr.ErrCanceled
	// ErrBadQuery: the request is malformed (empty message, unknown
	// retrieval source, invalid parameter); retrying unchanged cannot
	// succeed.
	ErrBadQuery = pnerr.ErrBadQuery
	// ErrIndexCorrupt: persisted index state failed to load or disagrees
	// with the configuration (wrong embedding dim, unreadable manifest).
	ErrIndexCorrupt = pnerr.ErrIndexCorrupt
	// ErrIndexLocked: another live process holds the index directory
	// (BackendDisk is single-writer); retry after it closes. Stale locks
	// left by dead processes are broken automatically.
	ErrIndexLocked = pnerr.ErrIndexLocked
	// ErrClosed: the Service (or retriever) was closed before the request
	// was admitted.
	ErrClosed = pnerr.ErrClosed
	// ErrDegraded: every selected retrieval source failed; when only some
	// fail, the query succeeds with partial fusion instead (see
	// ir.Result.Degraded).
	ErrDegraded = pnerr.ErrDegraded
	// ErrOverloaded: the request was shed — the scheduler's wait queue
	// (WithMaxQueue) is full, so admitting it would let the backlog grow
	// without bound. Unlike ErrBadQuery, the identical request can succeed
	// once load subsides: back off and retry.
	ErrOverloaded = pnerr.ErrOverloaded
)

// ErrorCodeOf extracts the ErrorCode from an error chain, or "" when the
// chain carries no typed *Error.
func ErrorCodeOf(err error) ErrorCode { return pnerr.CodeOf(err) }

// ErrorCodes enumerates the complete typed error vocabulary in declaration
// order — the slice exhaustiveness tests (like the HTTP status mapping in
// internal/server) iterate so a new code cannot ship without a mapping.
func ErrorCodes() []ErrorCode { return pnerr.Codes() }
