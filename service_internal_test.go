package pneuma

import (
	"context"
	"errors"
	"testing"
	"time"

	"pneuma/internal/pnerr"
)

// TestServiceQueueCancellation (white-box): with every scheduler slot
// occupied, a queued request whose context fires must leave the queue with
// a typed ErrCanceled instead of waiting for a slot — no head-of-line
// blocking on abandoned requests.
func TestServiceQueueCancellation(t *testing.T) {
	svc, err := New(ArchaeologyDataset(), WithMaxConcurrent(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Occupy the only slot directly; the queued Send below can then never
	// be admitted until we give the slot back.
	svc.sem <- struct{}{}

	sess := svc.NewSession("queued-user")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.Send(ctx, "What tables describe soil samples?")
	waited := time.Since(start)
	if !errors.Is(err, pnerr.ErrCanceled) {
		t.Fatalf("queued Send = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Send = %v, want context.DeadlineExceeded in the chain", err)
	}
	if waited > 3*time.Second {
		t.Fatalf("queued Send took %v to abandon the queue", waited)
	}

	// Release the slot: the service must serve normally again.
	<-svc.sem
	reply, err := sess.Send(context.Background(), "What tables describe soil samples?")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Message == "" {
		t.Error("post-release Send returned an empty reply")
	}
}

// TestServiceCloseDrains (white-box): Close waits for an in-flight
// request before releasing the index.
func TestServiceCloseDrains(t *testing.T) {
	svc, err := New(ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	sess := svc.NewSession("drain-user")

	inFlight := make(chan error, 1)
	go func() {
		_, err := sess.Send(context.Background(), "What is the average organic matter percentage for soil samples in the Malta region?")
		inFlight <- err
	}()
	// Wait for admission (the slot is taken), then Close concurrently.
	for i := 0; i < 1000 && len(svc.sem) == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request failed during Close: %v", err)
	}
	// After the drain, new work is rejected.
	if _, err := sess.Send(context.Background(), "another"); !errors.Is(err, pnerr.ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

// TestServiceSearchSurfacesDegraded (white-box): when a source dies the
// public Search returns the surviving fusion together with an
// ErrDegraded-coded error, never a silent success.
func TestServiceSearchSurfacesDegraded(t *testing.T) {
	svc, err := New(ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	// Seed the knowledge source so something survives the tables outage.
	if _, err := svc.Knowledge().Save(context.Background(), "potassium", "potassium should be interpolated between samples", "alice"); err != nil {
		t.Fatal(err)
	}
	// Kill the tables source behind the Service's back.
	if err := svc.Seeker().IR().Tables.Close(); err != nil {
		t.Fatal(err)
	}
	docs, err := svc.Search(context.Background(), "potassium interpolation in soil", 5)
	if !errors.Is(err, pnerr.ErrDegraded) {
		t.Fatalf("Search with a dead source = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, pnerr.ErrClosed) {
		t.Fatalf("err = %v, want the source's ErrClosed preserved", err)
	}
	if len(docs) == 0 {
		t.Fatal("degraded Search discarded the surviving source's documents")
	}
}

// TestServiceCloseConcurrent (white-box): no Close call — first or
// concurrent duplicate — may return while a request is still in flight.
// The in-flight request is simulated by holding a scheduler slot and a
// drain-count directly, so the window is deterministic.
func TestServiceCloseConcurrent(t *testing.T) {
	svc, err := New(ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate one admitted, still-running request.
	svc.mu.Lock()
	svc.wg.Add(1)
	svc.mu.Unlock()
	svc.sem <- struct{}{}

	const closers = 4
	done := make(chan error, closers)
	for i := 0; i < closers; i++ {
		go func() { done <- svc.Close() }()
	}
	// Every closer — whichever one won the race to be "first" — must
	// block while the request is outstanding.
	select {
	case <-done:
		t.Fatal("a Close returned while a request was still in flight")
	case <-time.After(100 * time.Millisecond):
	}
	// Finish the request: all closers must now return nil.
	<-svc.sem
	svc.wg.Done()
	for i := 0; i < closers; i++ {
		if err := <-done; err != nil {
			t.Errorf("closer %d: %v", i, err)
		}
	}
}

// TestServiceSearchWhitespaceQuery: the Search and Send bad-query
// boundaries agree — whitespace-only input is rejected up front on both.
func TestServiceSearchWhitespaceQuery(t *testing.T) {
	svc, err := New(ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Search(context.Background(), "  \t ", 3); !errors.Is(err, pnerr.ErrBadQuery) {
		t.Fatalf("whitespace Search = %v, want ErrBadQuery", err)
	}
}
