package pneuma

import (
	"runtime"
	"time"

	"pneuma/internal/core"
	"pneuma/internal/docdb"
	"pneuma/internal/llm"
	"pneuma/internal/websearch"
)

// Option configures New. Options are the single knob surface of the
// serving API, replacing the former split across Config fields,
// RetrieverKnobs and retriever options; the README's migration table maps
// every old field to its option.
type Option func(*settings)

// settings is the resolved configuration New assembles a Service from.
type settings struct {
	cfg           core.Config
	web           *websearch.Engine
	kb            *docdb.DB
	maxConcurrent int
	maxQueue      int
}

// DefaultMaxConcurrent returns the default request-scheduler width:
// GOMAXPROCS clamped to at least 4, mirroring the shard-count heuristic —
// enough concurrency to keep every core busy without unbounded fan-out
// amplification when many sessions arrive at once.
func DefaultMaxConcurrent() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

// WithModel sets the language model (default: the deterministic SimModel
// with the paper's o4-mini profile).
func WithModel(m Model) Option {
	return func(s *settings) { s.cfg.Model = m }
}

// WithModelProfile sets the language model to a fresh SimModel with the
// given pricing-catalog profile ("o4-mini", "o3", "gpt-4o", ...).
func WithModelProfile(profile string) Option {
	return func(s *settings) { s.cfg.Model = llm.NewSimModel(llm.WithProfile(profile)) }
}

// WithMaxActions caps the Conductor's consecutive actions per turn (the
// paper's i = 5).
func WithMaxActions(n int) Option {
	return func(s *settings) { s.cfg.MaxActions = n }
}

// WithMaxRepairs bounds the Materializer's repair loop (default 3).
func WithMaxRepairs(n int) Option {
	return func(s *settings) { s.cfg.MaxRepairs = n }
}

// WithSpecialized toggles context specialization (default true; false is
// the §5.2 ablation).
func WithSpecialized(on bool) Option {
	return func(s *settings) { s.cfg.Specialized = &on }
}

// WithDynamicPlanning selects conductor-style orchestration (default
// true; false runs the fixed static pipeline of §3.5).
func WithDynamicPlanning(on bool) Option {
	return func(s *settings) { s.cfg.DynamicPlanning = &on }
}

// WithWebSearch attaches a web-search engine and enables the web
// retrieval source (the paper disables it for benchmarks; passing nil
// attaches the built-in synthetic engine).
func WithWebSearch(web *WebSearch) Option {
	return func(s *settings) {
		if web == nil {
			web = websearch.New(websearch.BuiltinCorpus())
		}
		s.web = web
		s.cfg.WebSearch = true
	}
}

// WithKnowledge attaches an existing Document Database, sharing captured
// knowledge across Services (a fresh one is created when this option is
// absent).
func WithKnowledge(kb *KnowledgeDB) Option {
	return func(s *settings) { s.kb = kb }
}

// WithShards sets the table-index shard count (default: derived from
// GOMAXPROCS, clamped to [4,16]).
func WithShards(n int) Option {
	return func(s *settings) { s.cfg.Shards = n }
}

// WithIndexWorkers sizes the embedding worker pool used by bulk corpus
// ingest (default GOMAXPROCS).
func WithIndexWorkers(n int) Option {
	return func(s *settings) { s.cfg.IndexWorkers = n }
}

// WithBackend selects the table-index shard storage engine
// (BackendMemory, the default, or BackendDisk).
func WithBackend(b Backend) Option {
	return func(s *settings) { s.cfg.Backend = b }
}

// WithIndexDir sets the segment directory for BackendDisk; opening a
// directory that already holds an index loads it instead of re-ingesting.
func WithIndexDir(dir string) Option {
	return func(s *settings) { s.cfg.IndexDir = dir }
}

// WithEf sets the HNSW query beam width (default 64): larger values trade
// query latency for vector-search recall.
func WithEf(n int) Option {
	return func(s *settings) { s.cfg.Ef = n }
}

// WithSyncEvery enables group-commit durability for BackendDisk triggered
// by pending record count: once n records have been appended to a shard
// since its last fsync, the flusher syncs immediately. Concurrent writers
// share each disk barrier, so this shrinks the crash-loss window
// (including deletes that a crash would otherwise resurrect) without
// paying one fsync per record. 0, the default, leaves the trigger unset.
// BackendMemory ignores the knob. Prefer WithSyncBytes or
// WithSyncInterval — a record count is a proxy for both volume and
// latency and tracks neither well.
func WithSyncEvery(n int) Option {
	return func(s *settings) { s.cfg.SyncEvery = n }
}

// WithSyncBytes enables group-commit durability for BackendDisk triggered
// by pending byte volume: once n bytes of records have been appended to a
// shard since its last fsync, the flusher syncs immediately instead of
// waiting out the latency bound. 0, the default, leaves the trigger
// unset. BackendMemory ignores the knob.
func WithSyncBytes(n int64) Option {
	return func(s *settings) { s.cfg.SyncBytes = n }
}

// WithSyncInterval bounds how long an acknowledged BackendDisk write may
// stay unsynced: the group-commit flusher fsyncs every shard with pending
// records at most d after the first of them arrived, batching the window
// into one fsync per shard. Setting any sync knob activates the flusher;
// the bound defaults to 2ms when WithSyncEvery or WithSyncBytes is set
// without one. 0, the default, leaves the bound unset. BackendMemory
// ignores the knob.
func WithSyncInterval(d time.Duration) Option {
	return func(s *settings) { s.cfg.SyncInterval = d }
}

// WithQuantize toggles the table index's int8 speed tier (default off):
// vector search traverses scalar-quantized int8 vectors — a quarter of
// the memory bandwidth per distance — then rescores finalists with exact
// float32 arithmetic, so returned scores and ordering stay full
// precision. The graph itself is built from float32 either way, and an
// existing disk index can be reopened with a different setting.
func WithQuantize(on bool) Option {
	return func(s *settings) { s.cfg.Quantize = on }
}

// WithMmap makes BackendDisk memory-map snapshot files on open instead of
// reading them (default off): cold start skips the read-and-decode copy,
// vector arenas page in on demand, and co-located processes share the
// page cache. Results may alias the mapping, so documents returned by a
// mmap-backed service must not be retained after Close. Ignored on
// platforms without mmap support; BackendMemory ignores the knob.
func WithMmap(on bool) Option {
	return func(s *settings) { s.cfg.Mmap = on }
}

// WithCompactionRatio sets the dead-record fraction beyond which
// BackendDisk rewrites a shard's segment file to its live records (and
// refreshes its snapshot) at flush/close. 0 selects the default of 0.5;
// values in (0, 1] set the threshold; negative values disable compaction.
// BackendMemory ignores the knob.
func WithCompactionRatio(ratio float64) Option {
	return func(s *settings) { s.cfg.CompactionRatio = ratio }
}

// WithMaxConcurrent bounds how many requests (Send and Search calls
// across all sessions) execute simultaneously; excess requests queue and
// are admitted as slots free, or leave the queue when their context is
// canceled. Default DefaultMaxConcurrent().
func WithMaxConcurrent(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.maxConcurrent = n
		}
	}
}

// WithMaxQueue bounds the scheduler's wait queue: at most n requests may
// be waiting for a slot at any moment, and the request that would be the
// n+1st is rejected immediately with a typed ErrOverloaded instead of
// queueing. Default 0 leaves the queue unbounded (the pre-shedding
// behavior), in which case a traffic spike queues arbitrarily deep and
// callers cannot distinguish "slow" from "drowning" — servers should set
// a bound and surface the rejection as backpressure (HTTP 503 with
// Retry-After in pneuma-server).
func WithMaxQueue(n int) Option {
	return func(s *settings) {
		if n > 0 {
			s.maxQueue = n
		}
	}
}
