package pneuma

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pneuma/internal/core"
	"pneuma/internal/docdb"
	"pneuma/internal/ir"
	"pneuma/internal/llm"
	"pneuma/internal/pnerr"
	"pneuma/internal/table"
)

// Service is the concurrency-safe serving facade over one shared Seeker:
// many user sessions are admitted through a bounded request scheduler, so
// a burst of traffic queues instead of fanning out without limit, and a
// slow or abandoned request can be canceled through its context without
// blocking anyone else's.
//
// Scheduling: every request (Send or Search, across all sessions)
// acquires one of MaxConcurrent slots before touching the shared index.
// Waiters whose context is canceled leave the queue immediately — there
// is no head-of-line blocking: a stuck request occupies only its own
// slot, never the admission queue.
//
// Accounting: the Service-wide meter keeps global totals while every
// session records its own calls on its session meter, so Table-2-style
// accounting stays attributable per session under concurrency (session
// usages sum to the service total).
type Service struct {
	seeker *core.Seeker
	sem    chan struct{}
	// maxQueue bounds how many requests may wait for a slot at once
	// (WithMaxQueue); 0 means the queue is unbounded, the pre-shedding
	// behavior.
	maxQueue int
	sched    schedCounters

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	// closeDone is closed (and closeErr set) once the first Close has
	// fully drained and released the index; later Close calls wait on it
	// so "Close returned" always means "the index is flushed".
	closeDone chan struct{}
	closeErr  error
}

// New assembles a Service over a table corpus with the unified
// functional-options API:
//
//	svc, err := pneuma.New(corpus,
//	    pneuma.WithShards(8),
//	    pneuma.WithBackend(pneuma.BackendDisk),
//	    pneuma.WithIndexDir("./idx"),
//	    pneuma.WithMaxConcurrent(64),
//	)
//
// Index construction runs under a background context; use NewContext to
// make assembly cancellable, and the returned Service's Close to flush
// and release disk-backed indexes.
func New(corpus map[string]*Table, opts ...Option) (*Service, error) {
	return NewContext(context.Background(), corpus, opts...)
}

// NewContext is New with a caller-supplied context governing corpus
// ingest: canceling it abandons index construction (the embedding worker
// pool and the per-shard writers stop at the next document) and returns a
// typed ErrCanceled.
func NewContext(ctx context.Context, corpus map[string]*Table, opts ...Option) (*Service, error) {
	var s settings
	for _, o := range opts {
		o(&s)
	}
	if s.kb == nil {
		s.kb = docdb.New()
	}
	if s.maxConcurrent <= 0 {
		s.maxConcurrent = DefaultMaxConcurrent()
	}
	seeker, err := core.New(ctx, s.cfg, corpus, s.web, s.kb)
	if err != nil {
		return nil, err
	}
	return &Service{
		seeker:   seeker,
		sem:      make(chan struct{}, s.maxConcurrent),
		maxQueue: s.maxQueue,
	}, nil
}

// schedCounters instruments the request scheduler: two gauges (queue
// depth, in-flight), outcome counters and two cumulative durations, all
// atomics so the hot path never takes a lock to account for itself.
// Stats() assembles them into the typed SchedulerStats snapshot the
// metrics endpoint and the load shedder read.
type schedCounters struct {
	queued    atomic.Int64  // requests waiting for a slot right now
	inFlight  atomic.Int64  // requests holding a slot right now
	accepted  atomic.Uint64 // requests admitted to a slot
	rejected  atomic.Uint64 // requests shed by the queue bound
	canceled  atomic.Uint64 // requests whose ctx fired before admission
	completed atomic.Uint64 // admitted requests that released their slot
	waitNanos atomic.Int64  // total time accepted requests spent queued
	busyNanos atomic.Int64  // total time admitted requests held a slot
}

// acquire admits one request and returns the release that gives its slot
// back: it rejects closed services, sheds with a typed ErrOverloaded when
// the wait queue is at its bound, honors cancellation while queueing, and
// counts the request for Close's drain and for Stats.
func (s *Service) acquire(ctx context.Context, op string) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		s.sched.canceled.Add(1)
		return nil, pnerr.Canceled(op, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, pnerr.Closed(op)
	}
	s.wg.Add(1)
	s.mu.Unlock()
	// Fast path: a free slot admits without ever counting as queued.
	select {
	case s.sem <- struct{}{}:
		return s.admit(0), nil
	default:
	}
	// No free slot: the request queues. The depth bound is enforced on
	// the post-increment value, so at most maxQueue requests ever wait.
	if n := s.sched.queued.Add(1); s.maxQueue > 0 && n > int64(s.maxQueue) {
		s.sched.queued.Add(-1)
		s.sched.rejected.Add(1)
		s.wg.Done()
		return nil, pnerr.Overloaded(op)
	}
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.sched.queued.Add(-1)
		return s.admit(time.Since(start)), nil
	case <-ctx.Done():
		s.sched.queued.Add(-1)
		s.sched.canceled.Add(1)
		s.wg.Done()
		return nil, pnerr.Canceled(op, ctx.Err())
	}
}

// admit records one admission and returns the paired release: the gauge
// flips from queued to in-flight, and the slot-holding time accumulates
// into busyNanos so EstimatedWait can project the backlog.
func (s *Service) admit(waited time.Duration) func() {
	s.sched.accepted.Add(1)
	s.sched.waitNanos.Add(int64(waited))
	s.sched.inFlight.Add(1)
	start := time.Now()
	return func() {
		s.sched.busyNanos.Add(int64(time.Since(start)))
		s.sched.inFlight.Add(-1)
		s.sched.completed.Add(1)
		<-s.sem
		s.wg.Done()
	}
}

// NewSession starts a conversation for the named user. Sessions are
// independent: each is single-caller (one conversation, one author), but
// any number of them may Send concurrently — the scheduler serializes
// admission, and everything sessions share is concurrency-safe.
func (s *Service) NewSession(user string) *ServiceSession {
	return &ServiceSession{svc: s, inner: s.seeker.NewSession(user)}
}

// Search runs one request-scoped retrieval against the IR System (all
// sources, RRF-fused) through the scheduler. It returns typed errors:
// ErrCanceled when ctx fires (queued or mid-fan-out), ErrBadQuery for an
// empty query, ErrClosed after Close. When only some sources fail the
// call degrades instead of losing the good results: the surviving fusion
// is returned together with a non-nil ErrDegraded-coded error wrapping
// the per-source failures — check errors.Is(err, ErrDegraded) to accept
// partial results.
func (s *Service) Search(ctx context.Context, query string, k int) ([]Document, error) {
	return s.SearchIn(ctx, query, k)
}

// SearchIn is Search restricted to the named retrieval sources ("tables",
// "knowledge", "web"); no names means all sources, exactly Search. An
// unknown name is a typed ErrBadQuery. A source that is named but not
// configured on this Service (web search disabled, say) counts as a
// failed source: the query degrades — surviving sources fuse and the
// ErrDegraded-coded error names the missing one — rather than silently
// returning less than was asked for.
func (s *Service) SearchIn(ctx context.Context, query string, k int, sources ...string) ([]Document, error) {
	const op = "service: search"
	if strings.TrimSpace(query) == "" {
		return nil, pnerr.BadQueryf(op, "empty query")
	}
	release, err := s.acquire(ctx, op)
	if err != nil {
		return nil, err
	}
	defer release()
	srcs := make([]ir.Source, len(sources))
	for i, name := range sources {
		srcs[i] = ir.Source(name)
	}
	res, err := s.seeker.IR().Query(ctx, ir.Request{Query: query, K: k, Sources: srcs})
	if err != nil {
		return nil, err
	}
	if res.Degraded != nil {
		return res.Documents, pnerr.Degraded(op, res.Degraded)
	}
	return res.Documents, nil
}

// LookupTable fetches a table by exact name from the shared index — the
// grounding path for callers that already know what they want.
func (s *Service) LookupTable(name string) (*table.Table, bool) {
	return s.seeker.IR().LookupTable(name)
}

// AddTables streams new (or replacement) tables into the live index
// through the scheduler. The call batches embeddings through the
// retriever's worker pool and writes all shards concurrently; searches
// admitted before, during and after the ingest keep serving without
// blocking — each query pins the immutable shard views current when it
// starts, and the new tables become visible batch by batch as the
// writers publish. Disk-backed indexes append segment records through
// the group-commit flusher, so durability follows the configured sync
// policy (or the next Flush/Close).
//
// Cancellation abandons un-started embedding and insertion work and
// returns a typed ErrCanceled; tables already inserted stay in the index
// (ingest is not transactional). Determinism: once the ingest completes
// and the index quiesces, results are identical to an index built from
// the final corpus in one shot, at any shard count and on either
// backend.
func (s *Service) AddTables(ctx context.Context, tables ...*Table) error {
	const op = "service: add tables"
	if len(tables) == 0 {
		return nil
	}
	release, err := s.acquire(ctx, op)
	if err != nil {
		return err
	}
	defer release()
	return s.seeker.IR().Tables.IndexTables(ctx, tables)
}

// DeleteTables removes tables by name from the live index through the
// scheduler, returning how many of the names were present. Like
// AddTables, the removal never blocks serving traffic: in-flight queries
// finish on their pinned views (and may still surface a just-deleted
// table); queries starting after the call returns do not. Disk-backed
// indexes log one tombstone record per removed table; the space is
// reclaimed by the next compaction-triggering Flush.
func (s *Service) DeleteTables(ctx context.Context, names ...string) (int, error) {
	const op = "service: delete tables"
	if len(names) == 0 {
		return 0, nil
	}
	release, err := s.acquire(ctx, op)
	if err != nil {
		return 0, err
	}
	defer release()
	ids := make([]string, len(names))
	for i, name := range names {
		ids[i] = "table:" + name
	}
	return s.seeker.IR().Tables.DeleteDocuments(ids), nil
}

// Meter exposes the service-wide token/latency accounting (the sum over
// all sessions). Use Snapshot for a consistent read while sessions are
// active.
func (s *Service) Meter() *Meter { return s.seeker.Meter() }

// Knowledge exposes the shared Document Database.
func (s *Service) Knowledge() *KnowledgeDB { return s.seeker.Knowledge() }

// Seeker exposes the underlying assembled system for callers that need
// the pre-Service surface (harness adapters, tests). Direct Seeker calls
// bypass the request scheduler.
func (s *Service) Seeker() *Seeker { return s.seeker }

// MaxConcurrent reports the scheduler width.
func (s *Service) MaxConcurrent() int { return cap(s.sem) }

// Close stops admitting new requests, waits for in-flight (and
// already-queued) requests to drain, then flushes and releases the shared
// index. Subsequent requests fail with a typed ErrClosed. Close is
// idempotent and every call — including concurrent ones — blocks until
// the drain and flush have actually completed, so a returned Close always
// means the index is released.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		done := s.closeDone
		s.mu.Unlock()
		<-done
		return s.closeErr
	}
	s.closed = true
	s.closeDone = make(chan struct{})
	s.mu.Unlock()
	s.wg.Wait()
	s.closeErr = s.seeker.Close()
	close(s.closeDone)
	return s.closeErr
}

// ServiceSession is one user's conversation admitted through the Service
// scheduler. It wraps a Session: Send acquires a scheduler slot, attaches
// the session meter to the request context, and maps failures to typed
// errors.
type ServiceSession struct {
	svc   *Service
	inner *core.Session
}

// Send delivers one user message and runs the Conductor turn under the
// request's context: cancellation propagates into retrieval fan-out,
// model calls and materialization, and surfaces as a typed ErrCanceled.
// While the request waits for a scheduler slot, cancellation abandons the
// queue immediately.
func (ss *ServiceSession) Send(ctx context.Context, message string) (Reply, error) {
	release, err := ss.svc.acquire(ctx, "service: send")
	if err != nil {
		return Reply{}, err
	}
	defer release()
	return ss.inner.Send(ctx, message)
}

// Meter exposes this session's own token/latency accounting — the
// per-session slice of the service meter.
func (ss *ServiceSession) Meter() *Meter { return ss.inner.Meter() }

// Session exposes the underlying conversation state (State view,
// accumulated documents, knowledge notes). Calling Send on it directly
// bypasses the Service scheduler.
func (ss *ServiceSession) Session() *Session { return ss.inner }

// User returns the session's user name (knowledge-capture attribution).
func (ss *ServiceSession) User() string { return ss.inner.User }

// Metering types re-exported for Service/session accounting.
type (
	// Meter accumulates token usage and simulated latency; safe for
	// concurrent recording.
	Meter = llm.Meter
	// MeterSnapshot is a consistent point-in-time copy of a Meter.
	MeterSnapshot = llm.MeterSnapshot
	// Usage is one token bill (input and output tokens).
	Usage = llm.Usage
)
