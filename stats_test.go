package pneuma

import (
	"context"
	"errors"
	"testing"
	"time"

	"pneuma/internal/pnerr"
)

// TestServiceStatsCounters: the typed snapshot must agree with the traffic
// actually served — admissions, completions, slot-hold time, index size
// and meter totals all on one surface.
func TestServiceStatsCounters(t *testing.T) {
	svc, err := New(ArchaeologyDataset())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()
	if _, err := svc.Search(ctx, "soil samples potassium", 5); err != nil {
		t.Fatal(err)
	}
	sess := svc.NewSession("stats-user")
	if _, err := sess.Send(ctx, "What tables describe soil samples?"); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Scheduler.Accepted != 2 || st.Scheduler.Completed != 2 {
		t.Errorf("Accepted/Completed = %d/%d, want 2/2", st.Scheduler.Accepted, st.Scheduler.Completed)
	}
	if st.Scheduler.InFlight != 0 || st.Scheduler.QueueDepth != 0 {
		t.Errorf("idle gauges = inflight %d queue %d, want 0/0", st.Scheduler.InFlight, st.Scheduler.QueueDepth)
	}
	if st.Scheduler.Busy <= 0 {
		t.Error("Busy duration not accumulated")
	}
	if st.Scheduler.MaxConcurrent != svc.MaxConcurrent() {
		t.Errorf("MaxConcurrent = %d, want %d", st.Scheduler.MaxConcurrent, svc.MaxConcurrent())
	}
	if st.Tables.Documents == 0 {
		t.Error("Tables.Documents = 0, want the corpus size")
	}
	if st.Meter.Calls == 0 || st.Meter.Total.InTokens == 0 {
		t.Errorf("Meter = %d calls %d in-tokens; want nonzero after a Send", st.Meter.Calls, st.Meter.Total.InTokens)
	}
	if got := svc.Meter().Snapshot(); got.Calls != st.Meter.Calls {
		t.Errorf("Stats meter (%d calls) disagrees with Service.Meter (%d)", st.Meter.Calls, got.Calls)
	}
}

// TestServiceMaxQueueSheds (white-box): with the only slot held and the
// one queue seat taken, the next request must be rejected immediately with
// a typed ErrOverloaded — not queued behind an unbounded backlog — and the
// rejection must show up in Stats.
func TestServiceMaxQueueSheds(t *testing.T) {
	svc, err := New(ArchaeologyDataset(), WithMaxConcurrent(1), WithMaxQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Occupy the only slot directly so the next request must queue.
	svc.sem <- struct{}{}

	queued := make(chan error, 1)
	go func() {
		_, err := svc.Search(context.Background(), "soil samples", 3)
		queued <- err
	}()
	// Wait until the queued request is counted as waiting.
	for i := 0; i < 1000 && svc.sched.queued.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := svc.Stats().Scheduler.QueueDepth; got != 1 {
		t.Fatalf("QueueDepth = %d, want 1", got)
	}

	// The queue is full: this request must be shed, and fast.
	start := time.Now()
	_, err = svc.Search(context.Background(), "more soil", 3)
	if !errors.Is(err, pnerr.ErrOverloaded) {
		t.Fatalf("over-queue Search = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, ErrOverloaded) != true {
		t.Fatal("public ErrOverloaded sentinel does not match")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shed request took %v; shedding must not wait", waited)
	}

	// Give the slot back: the queued request must complete normally.
	<-svc.sem
	if err := <-queued; err != nil {
		t.Fatalf("queued request failed after the slot freed: %v", err)
	}
	st := svc.Stats().Scheduler
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if st.QueueWait <= 0 {
		t.Error("QueueWait not accumulated for the queued request")
	}
}

// TestSchedulerEstimatedWait: the projection is backlog x mean hold time /
// slots, and zero without a backlog or a completion history.
func TestSchedulerEstimatedWait(t *testing.T) {
	st := SchedulerStats{
		MaxConcurrent: 2,
		QueueDepth:    4,
		Completed:     10,
		Busy:          10 * 50 * time.Millisecond,
	}
	if got, want := st.EstimatedWait(), 100*time.Millisecond; got != want {
		t.Errorf("EstimatedWait = %v, want %v", got, want)
	}
	if got := (SchedulerStats{MaxConcurrent: 2, Completed: 5, Busy: time.Second}).EstimatedWait(); got != 0 {
		t.Errorf("empty-queue EstimatedWait = %v, want 0", got)
	}
	if got := (SchedulerStats{MaxConcurrent: 2, QueueDepth: 3}).EstimatedWait(); got != 0 {
		t.Errorf("no-history EstimatedWait = %v, want 0", got)
	}
}
