// Command pneuma-index builds a Pneuma-Retriever hybrid index over a CSV
// directory and runs queries against it from the command line — the
// standalone table-discovery workflow. The index is sharded and the corpus
// is bulk-ingested through the embedding worker pool.
//
//	pneuma-index -dir ./data/archaeology -q "potassium in soil samples"
//	pneuma-index -dir ./data/environment -q "rainfall" -shards 4 -workers 8
//	pneuma-index -dir ./data/environment -q "rainfall" -backend disk -index-dir ./idx
//
// With -backend disk the index is persisted to append-only segment files
// under -index-dir and reloaded on the next run against the same
// directory: a run that finds a populated index skips ingest entirely and
// queries the loaded segments (pass -reindex to force re-ingest after the
// CSV directory changes).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"pneuma"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	dir := flag.String("dir", "", "CSV directory to index")
	query := flag.String("q", "", "query to run against the index")
	k := flag.Int("k", 5, "number of results")
	shards := flag.Int("shards", 0, "index shard count (0 = GOMAXPROCS-derived default)")
	workers := flag.Int("workers", 0, "embedding worker-pool size (0 = GOMAXPROCS)")
	backendName := flag.String("backend", "", "shard storage backend: memory (default) or disk")
	indexDir := flag.String("index-dir", "", "segment directory for -backend disk (default: temp dir)")
	reindex := flag.Bool("reindex", false, "re-ingest the CSV directory even if -index-dir already holds an index")
	syncEvery := flag.Int("sync-every", 0, "group-commit fsync once n disk records are pending (0 = only on flush/close)")
	syncBytes := flag.Int64("sync-bytes", 0, "group-commit fsync once pending disk records reach n bytes (0 = unset)")
	syncInterval := flag.Duration("sync-interval", 0, "max time an acknowledged disk write stays unsynced (0 = unset; 2ms when another sync flag is set)")
	compactRatio := flag.Float64("compaction-ratio", 0, "dead-record fraction triggering disk segment compaction (0 = default 0.5, negative disables)")
	quantize := flag.Bool("quantize", false, "int8 speed tier: quantized vector traversal with exact float32 rescoring")
	mmap := flag.Bool("mmap", false, "memory-map disk snapshots on open instead of reading them")
	flag.Parse()

	if *dir == "" || *query == "" {
		fmt.Fprintln(os.Stderr, "usage: pneuma-index -dir <csvdir> -q <query> [-k n] [-shards n] [-workers n] [-backend memory|disk] [-index-dir path]")
		os.Exit(2)
	}
	backend, err := pneuma.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(2)
	}
	corpus, err := pneuma.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	ret, err := pneuma.NewRetrieverWith(pneuma.RetrieverKnobs{
		Shards: *shards, Workers: *workers, Backend: backend, Dir: *indexDir,
		SyncEvery: *syncEvery, SyncBytes: *syncBytes, SyncInterval: *syncInterval,
		CompactionRatio: *compactRatio, Quantize: *quantize, Mmap: *mmap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	// Close flushes (snapshotting disk shards for a fast next open) and
	// releases the index-directory lock.
	defer ret.Close()
	where := string(ret.Backend())
	if d := ret.Dir(); d != "" {
		where += " @ " + d
	}
	// A populated disk index was just replayed from its segment files;
	// re-ingesting the CSVs would only append replacement records and
	// grow the log, so skip it unless the caller forces -reindex.
	if loaded := ret.Len(); loaded > 0 && !*reindex {
		fmt.Printf("loaded %d documents across %d shards (%s) without re-ingest;", loaded, ret.NumShards(), where)
	} else {
		tables := make([]*pneuma.Table, 0, len(corpus))
		for _, t := range corpus {
			tables = append(tables, t)
		}
		start := time.Now()
		if err := ret.IndexTables(ctx, tables); err != nil {
			fmt.Fprintln(os.Stderr, "pneuma-index:", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if err := ret.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "pneuma-index:", err)
			os.Exit(1)
		}
		fmt.Printf("%d tables indexed across %d shards (%s) in %v (%.0f tables/sec);",
			len(corpus), ret.NumShards(), where, elapsed.Round(time.Millisecond),
			float64(len(corpus))/elapsed.Seconds())
	}
	hits, err := ret.Search(ctx, *query, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	fmt.Printf(" top %d for %q:\n\n", len(hits), *query)
	for i, h := range hits {
		fmt.Printf("%d. %s (score %.4f)\n", i+1, h.Title, h.Score)
		if h.Table != nil {
			fmt.Printf("   %s\n", h.Table.Schema.String())
		}
	}
}
