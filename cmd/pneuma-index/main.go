// Command pneuma-index builds a Pneuma-Retriever hybrid index over a CSV
// directory and runs queries against it from the command line — the
// standalone table-discovery workflow.
//
//	pneuma-index -dir ./data/archaeology -q "potassium in soil samples"
package main

import (
	"flag"
	"fmt"
	"os"

	"pneuma"
)

func main() {
	dir := flag.String("dir", "", "CSV directory to index")
	query := flag.String("q", "", "query to run against the index")
	k := flag.Int("k", 5, "number of results")
	flag.Parse()

	if *dir == "" || *query == "" {
		fmt.Fprintln(os.Stderr, "usage: pneuma-index -dir <csvdir> -q <query> [-k n]")
		os.Exit(2)
	}
	corpus, err := pneuma.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	ret := pneuma.NewRetriever()
	for _, t := range corpus {
		if err := ret.IndexTable(t); err != nil {
			fmt.Fprintln(os.Stderr, "pneuma-index:", err)
			os.Exit(1)
		}
	}
	hits, err := ret.Search(*query, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	fmt.Printf("%d tables indexed; top %d for %q:\n\n", len(corpus), len(hits), *query)
	for i, h := range hits {
		fmt.Printf("%d. %s (score %.4f)\n", i+1, h.Title, h.Score)
		if h.Table != nil {
			fmt.Printf("   %s\n", h.Table.Schema.String())
		}
	}
}
