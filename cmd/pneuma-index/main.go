// Command pneuma-index builds a Pneuma-Retriever hybrid index over a CSV
// directory and runs queries against it from the command line — the
// standalone table-discovery workflow. The index is sharded and the corpus
// is bulk-ingested through the embedding worker pool.
//
//	pneuma-index -dir ./data/archaeology -q "potassium in soil samples"
//	pneuma-index -dir ./data/environment -q "rainfall" -shards 4 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pneuma"
)

func main() {
	dir := flag.String("dir", "", "CSV directory to index")
	query := flag.String("q", "", "query to run against the index")
	k := flag.Int("k", 5, "number of results")
	shards := flag.Int("shards", 0, "index shard count (0 = GOMAXPROCS-derived default)")
	workers := flag.Int("workers", 0, "embedding worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if *dir == "" || *query == "" {
		fmt.Fprintln(os.Stderr, "usage: pneuma-index -dir <csvdir> -q <query> [-k n] [-shards n] [-workers n]")
		os.Exit(2)
	}
	corpus, err := pneuma.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	ret := pneuma.NewRetrieverWith(pneuma.RetrieverKnobs{Shards: *shards, Workers: *workers})
	tables := make([]*pneuma.Table, 0, len(corpus))
	for _, t := range corpus {
		tables = append(tables, t)
	}
	start := time.Now()
	if err := ret.IndexTables(tables); err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	hits, err := ret.Search(*query, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-index:", err)
		os.Exit(1)
	}
	fmt.Printf("%d tables indexed across %d shards in %v (%.0f tables/sec); top %d for %q:\n\n",
		len(corpus), ret.NumShards(), elapsed.Round(time.Millisecond),
		float64(len(corpus))/elapsed.Seconds(), len(hits), *query)
	for i, h := range hits {
		fmt.Printf("%d. %s (score %.4f)\n", i+1, h.Title, h.Score)
		if h.Table != nil {
			fmt.Printf("   %s\n", h.Table.Schema.String())
		}
	}
}
