package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end serving gate behind `make serve-smoke`:
// it builds the real pneuma-server binary, boots it on an ephemeral port,
// and scripts a session over the wire — index a table, query it, force a
// degraded-source query, provoke a 400 — then sends SIGTERM and asserts
// the drain: 503 with Retry-After for late requests, /readyz 503 while
// /healthz stays 200, nonzero /metrics counters, and a clean exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the server binary; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "pneuma-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building pneuma-server: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-queue", "64", "-drain-linger", "3s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The boot line carries the resolved ephemeral address.
	var base string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		if i := strings.Index(scanner.Text(), "listening on "); i >= 0 {
			base = strings.TrimSpace(scanner.Text()[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatal("server never printed its listening address")
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stdout)

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}
	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(data)
	}

	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	// Index a table over the wire, then find it.
	csv := "station,annual_rainfall_mm\nbergen,2250\nlisbon,774\n"
	resp, body := post("/v1/tables", fmt.Sprintf(`[{"name":"rainfall","csv":%q}]`, csv))
	if resp.StatusCode != 200 {
		t.Fatalf("add table = %d (%s), want 200", resp.StatusCode, body)
	}
	found := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline) && !found; {
		resp, body = get("/v1/search?q=annual+rainfall+bergen&k=10")
		if resp.StatusCode != 200 {
			t.Fatalf("search = %d (%s), want 200", resp.StatusCode, body)
		}
		found = strings.Contains(body, "rainfall")
		if !found {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !found {
		t.Fatalf("indexed table never became searchable: %s", body)
	}

	// A session turn end to end.
	resp, body = post("/v1/sessions", `{"user":"smoke"}`)
	if resp.StatusCode != 201 {
		t.Fatalf("create session = %d (%s), want 201", resp.StatusCode, body)
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil || created.SessionID == "" {
		t.Fatalf("create session body %q: %v", body, err)
	}
	resp, body = post("/v1/sessions/"+created.SessionID+"/messages",
		`{"message":"What tables describe soil samples?"}`)
	if resp.StatusCode != 200 || !strings.Contains(body, `"reply"`) {
		t.Fatalf("send = %d (%s), want 200 with a reply", resp.StatusCode, body)
	}

	// Degraded-source query: web is named but not configured → 200 with
	// the degraded marker, per the status contract.
	resp, body = get("/v1/search?q=rainfall&sources=tables,web")
	if resp.StatusCode != 200 {
		t.Fatalf("degraded search = %d (%s), want 200", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Pneuma-Degraded") != "true" || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("degraded search missing marker (header %q, body %s)",
			resp.Header.Get("X-Pneuma-Degraded"), body)
	}

	// A malformed request maps to 400 with the typed code.
	resp, body = get("/v1/search?q=")
	if resp.StatusCode != 400 || !strings.Contains(body, `"bad query"`) {
		t.Fatalf("empty query = %d (%s), want 400 bad query", resp.StatusCode, body)
	}

	// The traffic above must be visible on /metrics.
	resp, body = get("/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d, want 200", resp.StatusCode)
	}
	for _, want := range []string{
		`pneuma_http_requests_total{route="search",code="200"}`,
		`pneuma_http_requests_total{route="search",code="400"} 1`,
		`pneuma_http_requests_total{route="send",code="200"} 1`,
		"pneuma_retriever_documents",
		"pneuma_llm_calls_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, "pneuma_sched_accepted_total 0\n") {
		t.Error("metrics report zero accepted requests after a scripted session")
	}

	// SIGTERM: the drain must be observable during the linger window.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	ready := -1
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener already gone; exit-code check below still gates
		}
		resp.Body.Close()
		ready = resp.StatusCode
		if ready == 503 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ready != 503 {
		t.Errorf("post-SIGTERM /readyz = %d, want 503", ready)
	}
	if resp, err := http.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("post-SIGTERM /healthz = %d, want 200 while draining", resp.StatusCode)
		}
	}
	if resp, err := http.Get(base + "/v1/search?q=rainfall"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Errorf("post-SIGTERM API request = %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("post-SIGTERM 503 missing Retry-After")
		}
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
}
