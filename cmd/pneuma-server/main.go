// Command pneuma-server is the network daemon: the HTTP/JSON serving
// front end (internal/server) over one pneuma.Service.
//
//	pneuma-server                          # archaeology dataset on :8080
//	pneuma-server -addr 127.0.0.1:0        # ephemeral port (printed on boot)
//	pneuma-server -dir ./my-csvs           # serve your own CSV directory
//	pneuma-server -index-dir ./idx         # disk-backed, persistent index
//	pneuma-server -web                     # enable the simulated web search
//	pneuma-server -max-concurrent 16 -max-queue 64 -max-wait 2s
//
// The session API lives under /v1 (see internal/server for the routes and
// status-code contract); /healthz, /readyz and /metrics (Prometheus text
// format) serve operations. Every request runs under a deadline — the
// ?timeout query parameter clamped by -max-timeout, defaulting to
// -timeout.
//
// SIGTERM or SIGINT starts the graceful drain: new API requests get 503
// with Retry-After and /readyz flips to 503 (so load balancers route
// away), in-flight requests finish up to -drain-timeout, the listener
// lingers at least -drain-linger for orchestrators to observe the
// not-ready state, and the index flushes on close. A second signal kills
// the process the hard way.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pneuma"
	"pneuma/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	dataset := flag.String("dataset", "archaeology", "built-in dataset: archaeology or environment")
	dir := flag.String("dir", "", "load a CSV directory instead of a built-in dataset")
	indexDir := flag.String("index-dir", "", "disk-backed index directory (persistent across restarts)")
	webOn := flag.Bool("web", false, "enable the simulated web search retriever")
	maxConcurrent := flag.Int("max-concurrent", 0, "scheduler slots (0 = GOMAXPROCS-derived default)")
	maxQueue := flag.Int("max-queue", 0, "scheduler wait-queue bound; excess requests get 503 (0 = unbounded)")
	maxWait := flag.Duration("max-wait", 0, "shed with 503 when the estimated queue wait exceeds this (0 = disabled)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper clamp on client-requested ?timeout values")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a drain waits for in-flight requests")
	drainLinger := flag.Duration("drain-linger", 0, "keep answering (503) at least this long after the drain begins")
	flag.Parse()

	if err := run(*addr, *dataset, *dir, *indexDir, *webOn,
		*maxConcurrent, *maxQueue, *maxWait,
		*timeout, *maxTimeout, *drainTimeout, *drainLinger); err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-server:", err)
		os.Exit(1)
	}
}

func run(addr, dataset, dir, indexDir string, webOn bool,
	maxConcurrent, maxQueue int, maxWait,
	timeout, maxTimeout, drainTimeout, drainLinger time.Duration) error {
	var corpus map[string]*pneuma.Table
	var err error
	switch {
	case dir != "":
		corpus, err = pneuma.LoadDir(dir)
	case dataset == "environment":
		corpus = pneuma.EnvironmentDataset()
	default:
		corpus = pneuma.ArchaeologyDataset()
	}
	if err != nil {
		return err
	}

	var opts []pneuma.Option
	if webOn {
		opts = append(opts, pneuma.WithWebSearch(nil))
	}
	if indexDir != "" {
		opts = append(opts, pneuma.WithBackend(pneuma.BackendDisk), pneuma.WithIndexDir(indexDir))
	}
	if maxConcurrent > 0 {
		opts = append(opts, pneuma.WithMaxConcurrent(maxConcurrent))
	}
	if maxQueue > 0 {
		opts = append(opts, pneuma.WithMaxQueue(maxQueue))
	}

	// Index assembly is signal-cancellable: SIGTERM during a large build
	// exits promptly instead of embedding to the end.
	buildCtx, stopBuild := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	svc, err := pneuma.NewContext(buildCtx, corpus, opts...)
	stopBuild()
	if err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Service:          svc,
		DefaultTimeout:   timeout,
		MaxTimeout:       maxTimeout,
		DrainTimeout:     drainTimeout,
		DrainLinger:      drainLinger,
		MaxEstimatedWait: maxWait,
	})
	if err != nil {
		svc.Close()
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		return err
	}
	// The boot line goes to stdout so scripts (make serve-smoke) can read
	// the resolved ephemeral port.
	fmt.Printf("pneuma-server: %d tables indexed, listening on http://%s\n", len(corpus), ln.Addr())

	// First signal drains gracefully; a second one kills the process via
	// the default disposition once NotifyContext unregisters.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = srv.Run(ctx, ln)
	if err == nil {
		fmt.Println("pneuma-server: drained cleanly")
	}
	return err
}
