// Command pneuma-datagen writes the synthetic KramaBench-style benchmark
// datasets to CSV files, plus the question banks with their ground-truth
// answers as a manifest.
//
//	pneuma-datagen -out ./data
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pneuma/internal/kramabench"
	"pneuma/internal/table"
)

func main() {
	out := flag.String("out", "./data", "output directory")
	flag.Parse()

	write := func(name string, corpus map[string]*table.Table, questions []kramabench.Question) {
		dir := filepath.Join(*out, name)
		for _, t := range corpus {
			path := filepath.Join(dir, t.Schema.Name+".csv")
			if err := t.WriteCSVFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "pneuma-datagen:", err)
				os.Exit(1)
			}
		}
		manifest := filepath.Join(dir, "questions.json")
		f, err := os.Create(manifest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pneuma-datagen:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		type item struct {
			ID       string `json:"id"`
			Question string `json:"question"`
			Answer   string `json:"answer"`
		}
		var items []item
		for _, q := range questions {
			items = append(items, item{q.ID, q.Need.QuestionText, q.Answer})
		}
		if err := enc.Encode(items); err != nil {
			fmt.Fprintln(os.Stderr, "pneuma-datagen:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("%s: %d tables + %d questions -> %s\n", name, len(corpus), len(questions), dir)
	}

	arch := kramabench.Archaeology()
	write("archaeology", arch, kramabench.ArchaeologyQuestions(arch))
	env := kramabench.Environment()
	write("environment", env, kramabench.EnvironmentQuestions(env))
}
