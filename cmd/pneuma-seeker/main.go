// Command pneuma-seeker is the interactive CLI rendition of the paper's
// interface (Figure 2): a chat pane plus the live state view (T, Q).
//
//	pneuma-seeker -dataset archaeology
//	pneuma-seeker -dataset environment
//	pneuma-seeker -dir ./my-csvs        # your own CSV directory
//	pneuma-seeker -web                  # enable the (simulated) web search
//
// Type messages at the prompt; the Conductor plans, retrieves, materializes
// and executes, then prints its reply and the updated state. Type
// ":state" to re-print the state view, ":actions" to see the last turn's
// action trace, ":quit" to exit. Ctrl-C cancels the in-flight turn (the
// request's context propagates into retrieval and model calls) without
// killing the session.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"pneuma"
)

func main() {
	dataset := flag.String("dataset", "archaeology", "built-in dataset: archaeology or environment")
	dir := flag.String("dir", "", "load a CSV directory instead of a built-in dataset")
	webOn := flag.Bool("web", false, "enable the simulated web search retriever")
	user := flag.String("user", "cli-user", "user name for knowledge capture")
	flag.Parse()

	var corpus map[string]*pneuma.Table
	var err error
	switch {
	case *dir != "":
		corpus, err = pneuma.LoadDir(*dir)
	case *dataset == "environment":
		corpus = pneuma.EnvironmentDataset()
	default:
		corpus = pneuma.ArchaeologyDataset()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-seeker:", err)
		os.Exit(1)
	}

	var opts []pneuma.Option
	if *webOn {
		opts = append(opts, pneuma.WithWebSearch(nil))
	}
	// Assembly (corpus ingest) is interrupt-cancellable too: Ctrl-C during
	// a large index build exits promptly instead of embedding to the end.
	buildCtx, stopBuild := signal.NotifyContext(context.Background(), os.Interrupt)
	svc, err := pneuma.NewContext(buildCtx, corpus, opts...)
	stopBuild()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-seeker:", err)
		os.Exit(1)
	}
	defer svc.Close()
	sess := svc.NewSession(*user)
	state := sess.Session()

	fmt.Printf("Pneuma-Seeker — %d tables loaded. Ask away (:quit to exit).\n\n", len(corpus))
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var lastReply pneuma.Reply
	for {
		fmt.Print("you> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == ":quit" || line == ":q":
			return
		case line == ":state":
			fmt.Println(state.State.View())
			continue
		case line == ":actions":
			for _, a := range lastReply.Actions {
				fmt.Printf("  %-13s %s", a.Action, a.Detail)
				if a.Err != "" {
					fmt.Printf(" [error: %s]", a.Err)
				}
				fmt.Println()
				if a.Reasoning != "" {
					fmt.Printf("                reasoning: %s\n", a.Reasoning)
				}
			}
			continue
		}
		// Each turn runs under its own interrupt-bound context: Ctrl-C
		// cancels this request end-to-end but keeps the session alive.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		reply, err := sess.Send(ctx, line)
		stop()
		if err != nil {
			if errors.Is(err, pneuma.ErrCanceled) {
				fmt.Println("\n(turn canceled)")
				continue
			}
			fmt.Println("system error:", err)
			continue
		}
		lastReply = reply
		fmt.Println("\nseeker>", reply.Message)
		fmt.Println()
		fmt.Println(state.State.View())
		fmt.Printf("(simulated turn latency: %.1fs; type :actions for the action trace)\n\n",
			state.TurnLatency.Seconds())
	}
}
