// Command pneuma-doccheck is the documentation gate behind `make docs`: it
// fails (exit 1) if any exported top-level symbol — function, method,
// type, constant or variable — in the given package directories lacks a
// doc comment, or if a package lacks a package comment entirely.
//
//	pneuma-doccheck ./internal/retriever ./internal/ir .
//
// A const/var/type block counts as documented if either the block or the
// individual spec carries a comment, matching what godoc renders. Test
// files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: pneuma-doccheck <pkgdir> [pkgdir...]")
		os.Exit(2)
	}
	var missing []string
	for _, dir := range os.Args[1:] {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pneuma-doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "pneuma-doccheck: %d exported symbol(s) lack doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns one entry per
// undocumented exported symbol, formatted as "file:line: name".
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			missing = append(missing, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			for _, decl := range f.Decls {
				missing = append(missing, checkDecl(fset, name, decl)...)
			}
		}
	}
	return missing, nil
}

// checkDecl reports undocumented exported symbols in one top-level
// declaration.
func checkDecl(fset *token.FileSet, file string, decl ast.Decl) []string {
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		// Methods count when the receiver's base type is exported:
		// unexported-receiver methods never surface in godoc.
		if d.Recv != nil && len(d.Recv.List) > 0 {
			base := receiverBase(d.Recv.List[0].Type)
			if base != "" && !ast.IsExported(base) {
				return nil
			}
			if d.Doc == nil {
				report(d.Pos(), fmt.Sprintf("method (%s).%s", base, d.Name.Name))
			}
			return missing
		}
		if d.Doc == nil {
			report(d.Pos(), "func "+d.Name.Name)
		}
	case *ast.GenDecl:
		// A comment on the block documents every spec inside it.
		blockDocumented := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !blockDocumented && s.Doc == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				if blockDocumented || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), "const/var "+n.Name)
					}
				}
			}
		}
	}
	_ = file
	return missing
}

// receiverBase extracts the receiver's base type name ("T" from *T, T, or
// generic instantiations).
func receiverBase(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
