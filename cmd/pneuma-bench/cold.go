package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"pneuma/internal/docs"
	"pneuma/internal/kramabench"
	"pneuma/internal/retriever"
)

// coldConfig bundles the -cold workload knobs.
type coldConfig struct {
	tables   int
	shards   int
	rounds   int
	indexDir string
	jsonPath string
	baseline string
}

// runColdBench measures the disk backend's cold-start trajectory: a
// synthetic corpus is persisted once, then the index is reopened
// repeatedly two ways — by full segment replay (snapshots removed, the
// pre-snapshot behaviour) and from its snapshots (the bulk-load fast
// path) — reporting the median open time of each, the speedup, and the
// on-disk footprint. Before reporting, the run proves the determinism
// contract: the snapshot-loaded, replay-built and memory-backed indexes
// must return identical results (scores within 1e-9) for the canonical
// retrieval queries. The cold_start section is merged into the -json
// report (preserving the -ingest measurements already recorded there).
func runColdBench(ctx context.Context, cfg coldConfig) {
	if cfg.rounds < 1 {
		cfg.rounds = 1
	}
	dir := cfg.indexDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pneuma-cold-*")
		fail(err)
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	n := cfg.tables
	tables := kramabench.SyntheticSlice(n)
	opts := []retriever.Option{retriever.WithBackend(retriever.Disk), retriever.WithDir(dir)}
	if cfg.shards > 0 {
		opts = append(opts, retriever.WithShards(cfg.shards))
	}

	fmt.Printf("Cold-start benchmark: %d synthetic tables (disk backend, %d rounds)\n\n", n, cfg.rounds)

	// Build (or load) the persisted index; Close flushes and snapshots.
	r, err := retriever.Open(opts...)
	fail(err)
	if r.Len() != 0 && r.Len() != n {
		fmt.Fprintf(os.Stderr, "pneuma-bench: index dir %s holds %d documents, want %d; point -index-dir at a fresh directory\n",
			dir, r.Len(), n)
		os.Exit(2)
	}
	if r.Len() == 0 {
		start := time.Now()
		fail(r.IndexTables(ctx, tables))
		fmt.Printf("  build (ingest + index):  %8v\n", time.Since(start).Round(time.Millisecond))
	}
	shards := r.NumShards()
	fail(r.Close())
	// Drop the corpus before the timed rounds: a real cold start has no
	// multi-megabyte live heap, and GC work during an open scales with
	// it. The generator is deterministic, so the parity reference below
	// regenerates the identical tables.
	tables = nil

	queries := kramabench.RetrievalQueries()
	const k = 10

	// Replay path: with snapshots removed, Open rebuilds every shard by
	// replaying its segment log — the only cold path before snapshots.
	// Each series starts with one untimed warm-up open so the page cache
	// and allocator are in the same state for both paths; every timed
	// round runs after an explicit GC, approximating the clean heap of a
	// genuinely fresh process.
	replayOpts := append(opts[:len(opts):len(opts)], retriever.WithSnapshotOnFlush(false))
	replayTimes := make([]time.Duration, 0, cfg.rounds)
	var replayRes [][]docs.Document
	for i := -1; i < cfg.rounds; i++ {
		removeAll(globIn(dir, "shard-*.snap"))
		runtime.GC()
		start := time.Now()
		re, err := retriever.Open(replayOpts...)
		fail(err)
		if i >= 0 {
			replayTimes = append(replayTimes, time.Since(start))
		}
		if i == 0 {
			replayRes = collect(ctx, re, queries, k)
		}
		fail(re.Close())
	}

	// Restore the snapshots, then measure the two snapshot-load paths:
	// bulk ReadFile+decode, and the same snapshots mapped instead of read
	// (the section copy disappears and pages are shared with the cache).
	// The two opens alternate within each round rather than running as
	// back-to-back series, so machine drift — frequency scaling, noisy
	// neighbors, page-cache churn — hits both medians equally and their
	// difference isolates the open path itself. Mmap results can alias the
	// mapping, so they are deep-copied before Close unmaps it.
	re, err := retriever.Open(opts...)
	fail(err)
	fail(re.Close())
	mmapOpts := append(opts[:len(opts):len(opts)], retriever.WithMmap(true))
	snapTimes := make([]time.Duration, 0, cfg.rounds)
	mmapTimes := make([]time.Duration, 0, cfg.rounds)
	var snapRes, mmapRes [][]docs.Document
	for i := -1; i < cfg.rounds; i++ {
		runtime.GC()
		start := time.Now()
		re, err := retriever.Open(opts...)
		fail(err)
		if i >= 0 {
			snapTimes = append(snapTimes, time.Since(start))
		}
		if i == 0 {
			snapRes = collect(ctx, re, queries, k)
		}
		fail(re.Close())

		runtime.GC()
		start = time.Now()
		rm, err := retriever.Open(mmapOpts...)
		fail(err)
		if i >= 0 {
			mmapTimes = append(mmapTimes, time.Since(start))
		}
		if i == 0 {
			mmapRes = cloneResults(collect(ctx, rm, queries, k))
		}
		fail(rm.Close())
	}

	// Determinism proof: mmap == snapshot-loaded == replay-built == memory.
	mem := retriever.New(retriever.WithShards(shards))
	fail(mem.IndexTables(ctx, kramabench.SyntheticSlice(n)))
	memRes := collect(ctx, mem, queries, k)
	for qi, q := range queries {
		assertParity(q, "snapshot-vs-replay", snapRes[qi], replayRes[qi])
		assertParity(q, "snapshot-vs-memory", snapRes[qi], memRes[qi])
		assertParity(q, "mmap-vs-snapshot", mmapRes[qi], snapRes[qi])
	}

	replayMed := median(replayTimes)
	snapMed := median(snapTimes)
	mmapMed := median(mmapTimes)
	segBytes := sizeOf(globIn(dir, "shard-*.seg"))
	snapBytes := sizeOf(globIn(dir, "shard-*.snap"))
	speedup := float64(replayMed) / float64(snapMed)
	fmt.Printf("  replay open   (no snapshot): %8v median of %d\n", replayMed.Round(time.Microsecond), len(replayTimes))
	fmt.Printf("  snapshot open (bulk load):   %8v median of %d\n", snapMed.Round(time.Microsecond), len(snapTimes))
	fmt.Printf("  mmap open     (zero copy):   %8v median of %d\n", mmapMed.Round(time.Microsecond), len(mmapTimes))
	fmt.Printf("  speedup: %.1fx   segment %0.1f MiB   snapshot %0.1f MiB\n",
		speedup, float64(segBytes)/(1<<20), float64(snapBytes)/(1<<20))
	fmt.Printf("  parity: mmap == snapshot == replay == memory over %d queries ✓\n", len(queries))

	cold := &coldStartStats{
		Tables:             n,
		Shards:             shards,
		ReplayOpenMillis:   float64(replayMed) / float64(time.Millisecond),
		SnapshotOpenMillis: float64(snapMed) / float64(time.Millisecond),
		MmapOpenMillis:     float64(mmapMed) / float64(time.Millisecond),
		Speedup:            speedup,
		SegmentBytes:       segBytes,
		SnapshotBytes:      snapBytes,
	}
	if cfg.baseline != "" {
		// Same drift rule as -ingest: re-read at report time, hard-fail on
		// a workload mismatch instead of printing misleading deltas.
		old, err := loadReport(cfg.baseline)
		fail(err)
		if old.ColdStart != nil && (old.ColdStart.Tables != cold.Tables || old.ColdStart.Shards != cold.Shards) {
			fail(fmt.Errorf("cold baseline workload mismatch: %d tables × %d shards vs %d × %d (rerun the baseline at this shape, or drop -baseline)",
				old.ColdStart.Tables, old.ColdStart.Shards, cold.Tables, cold.Shards))
		}
		fmt.Println()
		compareColdStart(old.ColdStart, cold)
	}
	if cfg.jsonPath != "" {
		// Merge: keep the -ingest measurements (including any quantized
		// section) already in the report.
		report, err := loadReport(cfg.jsonPath)
		if err != nil {
			report = benchReport{Corpus: n, Shards: shards, Backend: string(retriever.Disk)}
		}
		report.GeneratedAt = nowStamp()
		report.ColdStart = cold
		fail(writeReport(cfg.jsonPath, report))
		fmt.Printf("\ncold_start section written to %s\n", cfg.jsonPath)
	}
}

// cloneResults deep-copies document strings out of results that may alias
// a snapshot mapping (WithMmap): the parity comparison below runs after
// the mmap-backed retriever — and with it the mapping — is closed.
func cloneResults(res [][]docs.Document) [][]docs.Document {
	out := make([][]docs.Document, len(res))
	for i, hits := range res {
		out[i] = make([]docs.Document, len(hits))
		for j, d := range hits {
			d.ID = strings.Clone(d.ID)
			d.Title = strings.Clone(d.Title)
			d.Content = strings.Clone(d.Content)
			d.Source = strings.Clone(d.Source)
			out[i][j] = d
		}
	}
	return out
}

// collect runs every query and keeps the full result lists.
func collect(ctx context.Context, r *retriever.Retriever, queries []string, k int) [][]docs.Document {
	out := make([][]docs.Document, len(queries))
	for i, q := range queries {
		hits, err := r.Search(ctx, q, k)
		fail(err)
		out[i] = hits
	}
	return out
}

// assertParity exits non-zero when two result lists disagree (IDs exact,
// scores within 1e-9).
func assertParity(q, label string, a, b []docs.Document) {
	if len(a) != len(b) {
		fmt.Fprintf(os.Stderr, "pneuma-bench: %s parity failed for %q: %d vs %d results\n", label, q, len(a), len(b))
		os.Exit(1)
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			fmt.Fprintf(os.Stderr, "pneuma-bench: %s parity failed for %q at rank %d: (%s %v) vs (%s %v)\n",
				label, q, i, a[i].ID, a[i].Score, b[i].ID, b[i].Score)
			os.Exit(1)
		}
	}
}

// globIn expands a pattern under dir.
func globIn(dir, pattern string) []string {
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	fail(err)
	return matches
}

// removeAll deletes the given files.
func removeAll(files []string) {
	for _, f := range files {
		fail(os.Remove(f))
	}
}

// sizeOf sums file sizes.
func sizeOf(files []string) int64 {
	var n int64
	for _, f := range files {
		fi, err := os.Stat(f)
		fail(err)
		n += fi.Size()
	}
	return n
}

// median returns the middle value of the (sorted) durations.
func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
