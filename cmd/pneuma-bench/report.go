package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// benchReport is the machine-readable payload written to
// BENCH_retrieval.json by every -ingest run. It records the workload shape
// (corpus size, shard count, backend, ef) next to the measurements so a
// later run can refuse to diff apples against oranges, and optionally
// embeds the baseline it was compared to, making the file a self-contained
// before/after record of the repo's perf trajectory.
type benchReport struct {
	GeneratedAt string           `json:"generated_at"`
	Corpus      int              `json:"corpus_tables"`
	Shards      int              `json:"shards"`
	Backend     string           `json:"backend"`
	Ef          int              `json:"ef"`
	CPU         *cpuStats        `json:"cpu,omitempty"`
	Ingest      ingestStats      `json:"ingest"`
	Query       queryStats       `json:"query"`
	Kernels     *kernelStats     `json:"kernels,omitempty"`
	Quantized   *quantStats      `json:"quantized,omitempty"`
	ColdStart   *coldStartStats  `json:"cold_start,omitempty"`
	Mixed       *mixedStats      `json:"mixed_workload,omitempty"`
	Compaction  *compactionBench `json:"compaction,omitempty"`
	Serving     *servingStats    `json:"serving,omitempty"`
	Baseline    *benchReport     `json:"baseline,omitempty"`
}

// cpuStats records what the vecmath dispatch seam detected on the machine
// that produced the report. Numbers from different dispatch tiers are not
// comparable (an avx2 report diffed against a scalar one measures the CPU,
// not the code), so the tier travels with the measurements.
type cpuStats struct {
	// Tier is the float32 kernel set serving queries during the run;
	// DetectedTier is what CPUID found. They differ only under a
	// force-scalar override. Int8Tier/DetectedInt8Tier are the same pair
	// for the quantized tier's int8 dot kernel, which is detected
	// independently (SSE2 int8 exists below the AVX2 gate).
	Tier             string   `json:"dispatch_tier"`
	DetectedTier     string   `json:"detected_tier"`
	Int8Tier         string   `json:"int8_tier"`
	DetectedInt8Tier string   `json:"detected_int8_tier"`
	Features         []string `json:"features,omitempty"`
}

// kernelStats is the kernel microbenchmark written by every -ingest run
// (and refreshed standalone by -kernels): per-call latency of the hot
// distance kernels at the embedding dimensionality, dispatched tier
// versus forced scalar, over identical operands — plus the int8 quantized
// kernel measured on every dispatch rung the CPU offers, and the batched
// arena kernels against a loop of single calls. The speedups are the
// headline numbers for the SIMD work; the end-to-end effect shows up in
// the query percentiles.
type kernelStats struct {
	Dim            int     `json:"dim"`
	Tier           string  `json:"tier"`
	DotScalarNs    float64 `json:"dot_scalar_ns"`
	DotNs          float64 `json:"dot_ns"`
	DotSpeedup     float64 `json:"dot_speedup"`
	SqrL2ScalarNs  float64 `json:"squared_l2_scalar_ns"`
	SqrL2Ns        float64 `json:"squared_l2_ns"`
	SqrL2Speedup   float64 `json:"squared_l2_speedup"`
	CosineScalarNs float64 `json:"cosine_scalar_ns"`
	CosineNs       float64 `json:"cosine_ns"`
	CosineSpeedup  float64 `json:"cosine_speedup"`

	// int8 quantized-tier dot kernel, one field per dispatch rung so the
	// report shows the whole ladder; a rung the CPU lacks is omitted.
	// Int8Tier is the best rung (what serving dispatches to), Int8Speedup
	// its ratio over scalar, and Int8AVX2VsSSE2 the AVX2-over-SSE2 ratio —
	// the acceptance bar for the gated tier (present only when both rungs
	// exist).
	Int8Tier       string  `json:"dot_int8_tier"`
	Int8ScalarNs   float64 `json:"dot_int8_scalar_ns"`
	Int8SSE2Ns     float64 `json:"dot_int8_sse2_ns,omitempty"`
	Int8AVX2Ns     float64 `json:"dot_int8_avx2_ns,omitempty"`
	Int8Ns         float64 `json:"dot_int8_ns"`
	Int8Speedup    float64 `json:"dot_int8_speedup"`
	Int8AVX2VsSSE2 float64 `json:"dot_int8_avx2_vs_sse2,omitempty"`

	// Batched arena kernels at BatchSize candidates, per-candidate ns on
	// the best tier, against a loop of single kernel calls over the same
	// arena — the dispatch-amortization win traversal banks on.
	BatchSize         int     `json:"batch_size"`
	DotBatchNs        float64 `json:"dot_batch_per_cand_ns"`
	DotLoopNs         float64 `json:"dot_loop_per_cand_ns"`
	DotBatchSpeedup   float64 `json:"dot_batch_speedup"`
	SqrL2BatchNs      float64 `json:"squared_l2_batch_per_cand_ns"`
	SqrL2LoopNs       float64 `json:"squared_l2_loop_per_cand_ns"`
	SqrL2BatchSpeedup float64 `json:"squared_l2_batch_speedup"`
	Int8BatchNs       float64 `json:"dot_int8_batch_per_cand_ns"`
	Int8LoopNs        float64 `json:"dot_int8_loop_per_cand_ns"`
	Int8BatchSpeedup  float64 `json:"dot_int8_batch_speedup"`
}

// compactionBench is the writer-stall record written by the -compaction
// mode: the same delete-then-stream workload run twice on the disk
// backend, once with the background rewrite (default) and once inline
// (the pre-background behaviour), with the longest single writer stall
// each mode inflicted. The ratio is the headline for "compaction off the
// write path".
type compactionBench struct {
	Tables   int `json:"tables"`
	Deleted  int `json:"deleted"`
	Streamed int `json:"streamed_docs"`
	// Background-mode counters from Retriever.CompactionStats; Reclaimed
	// counts dead records dropped by the rewrites, not bytes.
	BackgroundRuns      uint64 `json:"background_runs"`
	BackgroundReclaimed int64  `json:"background_reclaimed_records"`
	// Max writer stall: the longest time any single write-path operation
	// held a shard lock on account of compaction work, per mode.
	BackgroundMaxStallMicros float64 `json:"background_max_stall_us"`
	InlineMaxStallMicros     float64 `json:"inline_max_stall_us"`
	// StallRatio is background/inline; well under 1.0 when the rewrite
	// genuinely left the write path.
	StallRatio float64 `json:"stall_ratio"`
}

// mixedStats is the live-ingest serving record written by the -mixed
// mode: query latency with the index quiescent versus while an ingest
// stream runs, the stream's throughput, and the p99 ratio between the
// two phases — the headline number for "ingest never blocks reads".
type mixedStats struct {
	Readers int `json:"readers"`
	// ThinkMillis is the per-reader sleep between queries: the pool is a
	// closed loop with think time, so both phases offer the same load and
	// the percentiles measure service latency under ingest rather than
	// the pool queueing behind its own saturation.
	ThinkMillis  float64 `json:"think_ms"`
	IngestTables int     `json:"ingest_tables"`
	// IngestOfferedRate is the paced stream rate in tables/sec (0 when the
	// stream ran unpaced); IngestTablesPerSec is what the stream achieved.
	IngestOfferedRate  float64 `json:"ingest_offered_rate,omitempty"`
	IngestTablesPerSec float64 `json:"ingest_tables_per_sec"`
	ReadOnlyP50Micros  float64 `json:"readonly_p50_us"`
	ReadOnlyP99Micros  float64 `json:"readonly_p99_us"`
	MixedP50Micros     float64 `json:"mixed_p50_us"`
	MixedP99Micros     float64 `json:"mixed_p99_us"`
	// P99Ratio is MixedP99Micros / ReadOnlyP99Micros; the acceptance bound
	// for the live-ingest work is ≤ 2.0 on the 1k-table corpus.
	P99Ratio float64 `json:"p99_ratio"`
}

// servingStats is the network-layer record written by the -serve mode:
// the retrieval query mix measured in-process (Service.SearchIn) and over
// the wire (GET /v1/search through internal/server on loopback TCP), so
// the overhead row prices HTTP framing + JSON encoding with the substrate
// held constant, plus the 2× saturation probe — twice as many closed-loop
// clients as scheduler slots against a bounded wait queue, recording what
// fraction of requests the server shed with the typed 503 backpressure
// and the goodput the admitted ones saw.
type servingStats struct {
	Queries       int `json:"queries"`
	K             int `json:"k"`
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueue      int `json:"max_queue"`
	// The same query mix, two call paths.
	InProcP50Micros float64 `json:"inproc_p50_us"`
	InProcP99Micros float64 `json:"inproc_p99_us"`
	WireP50Micros   float64 `json:"wire_p50_us"`
	WireP99Micros   float64 `json:"wire_p99_us"`
	// OverheadP50 is wire p50 minus in-process p50: the per-request price
	// of the network layer.
	OverheadP50 float64 `json:"wire_overhead_p50_us"`
	// The 2× saturation probe.
	SatClients       int     `json:"saturation_clients"`
	SatRequests      uint64  `json:"saturation_requests"`
	SatShed          uint64  `json:"saturation_shed"`
	ShedRate         float64 `json:"shed_rate"`
	SatGoodputPerSec float64 `json:"saturation_goodput_per_sec"`
}

// quantStats is the int8 speed tier's cost/accuracy record, written by
// -ingest -quantize: hybrid query latency and heap traffic with quantized
// traversal, vector-only recall@10 against the unquantized index, and the
// arena footprint of both representations.
type quantStats struct {
	Count         int     `json:"count"`
	K             int     `json:"k"`
	RescoreFactor int     `json:"rescore_factor"`
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
	MaxMicros     float64 `json:"max_us"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	// RecallAt10 is vector-only top-10 agreement with the unquantized
	// index over the bench query mix (1.0 = identical result sets).
	RecallAt10 float64 `json:"recall_at_10"`
	// Arena footprints across all shards; the ratio is the memory price
	// of the speed tier (int8 codes + per-vector constants vs float32).
	Float32ArenaBytes int64   `json:"float32_arena_bytes"`
	Int8ArenaBytes    int64   `json:"int8_arena_bytes"`
	ArenaRatio        float64 `json:"arena_ratio"`
}

// coldStartStats is the disk-backend cold-open trajectory written by the
// -cold mode: how long reopening a persisted index takes from its
// snapshots (bulk state load) versus by full segment replay (graph
// rebuild), with the on-disk footprint for context. A pre-snapshot
// baseline report carries only the replay number.
type coldStartStats struct {
	Tables           int     `json:"tables"`
	Shards           int     `json:"shards"`
	ReplayOpenMillis float64 `json:"replay_open_ms"`
	// SnapshotOpenMillis is 0 in reports from builds without snapshots
	// (the pre-snapshot baseline).
	SnapshotOpenMillis float64 `json:"snapshot_open_ms,omitempty"`
	// MmapOpenMillis is the snapshot open with WithMmap — the mapping
	// replaces the read-and-decode copy. 0 in reports from builds
	// without mmap support.
	MmapOpenMillis float64 `json:"mmap_open_ms,omitempty"`
	// Speedup is replay/snapshot open time within this run.
	Speedup       float64 `json:"speedup,omitempty"`
	SegmentBytes  int64   `json:"segment_bytes"`
	SnapshotBytes int64   `json:"snapshot_bytes,omitempty"`
}

// ingestStats is bulk-ingest throughput: the sequential seed path vs. the
// concurrent sharded path over the same corpus.
type ingestStats struct {
	SeqTablesPerSec float64 `json:"seq_tables_per_sec"`
	ParTablesPerSec float64 `json:"par_tables_per_sec"`
	Speedup         float64 `json:"speedup"`
}

// queryStats is hybrid query-path cost: latency percentiles over the bench
// query mix plus per-operation heap traffic measured via runtime.MemStats
// around the timed loop.
type queryStats struct {
	Count       int     `json:"count"`
	K           int     `json:"k"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	MaxMicros   float64 `json:"max_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// writeReport marshals the report to path (indented, trailing newline).
func writeReport(path string, r benchReport) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// loadReport reads a previously written benchReport.
func loadReport(path string) (benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var r benchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return benchReport{}, fmt.Errorf("corrupt bench report %s: %w", path, err)
	}
	return r, nil
}

// checkBaselineShape refuses to diff reports of different workloads: a
// baseline measured over another corpus size, backend or k would produce
// deltas that look like regressions (or wins) but are shape artifacts.
// The old behaviour printed a note and diffed anyway — numbers that then
// drifted into commit messages. Now it is a hard error.
func checkBaselineShape(old, cur benchReport) error {
	if old.Corpus != cur.Corpus || old.Backend != cur.Backend {
		return fmt.Errorf("baseline workload mismatch: corpus %d/%s vs %d/%s (rerun the baseline at this shape, or drop -baseline)",
			old.Corpus, old.Backend, cur.Corpus, cur.Backend)
	}
	if old.Query.K != 0 && cur.Query.K != 0 && old.Query.K != cur.Query.K {
		return fmt.Errorf("baseline k mismatch: %d vs %d", old.Query.K, cur.Query.K)
	}
	return nil
}

// compareReports prints a benchstat-style old-vs-new table. Lower is better
// for every row except the throughput and speedup rows, where the sign of
// "better" flips; the delta column is always (new-old)/old. Callers must
// have validated the shapes with checkBaselineShape first.
func compareReports(old, cur benchReport) {
	fmt.Printf("%-28s %12s %12s %9s\n", "metric", "old", "new", "delta")
	row := func(name string, o, n float64, higherIsBetter bool) {
		fmt.Printf("%-28s %12.1f %12.1f %9s\n", name, o, n, deltaPct(o, n, higherIsBetter))
	}
	row("ingest seq (tables/sec)", old.Ingest.SeqTablesPerSec, cur.Ingest.SeqTablesPerSec, true)
	row("ingest par (tables/sec)", old.Ingest.ParTablesPerSec, cur.Ingest.ParTablesPerSec, true)
	row("query p50 (µs)", old.Query.P50Micros, cur.Query.P50Micros, false)
	row("query p99 (µs)", old.Query.P99Micros, cur.Query.P99Micros, false)
	row("query allocs/op", old.Query.AllocsPerOp, cur.Query.AllocsPerOp, false)
	row("query bytes/op", old.Query.BytesPerOp, cur.Query.BytesPerOp, false)
	if old.Kernels != nil && cur.Kernels != nil {
		row("kernel dot (ns)", old.Kernels.DotNs, cur.Kernels.DotNs, false)
		row("kernel squared-l2 (ns)", old.Kernels.SqrL2Ns, cur.Kernels.SqrL2Ns, false)
	}
	if old.Quantized != nil && cur.Quantized != nil {
		row("quantized p50 (µs)", old.Quantized.P50Micros, cur.Quantized.P50Micros, false)
		row("quantized p99 (µs)", old.Quantized.P99Micros, cur.Quantized.P99Micros, false)
		row("quantized recall@10", old.Quantized.RecallAt10, cur.Quantized.RecallAt10, true)
	}
	if old.Compaction != nil && cur.Compaction != nil {
		row("compact bg stall (µs)", old.Compaction.BackgroundMaxStallMicros, cur.Compaction.BackgroundMaxStallMicros, false)
		row("compact inline stall (µs)", old.Compaction.InlineMaxStallMicros, cur.Compaction.InlineMaxStallMicros, false)
	}
	compareColdStart(old.ColdStart, cur.ColdStart)
}

// compareColdStart prints the cold-open delta rows when both reports
// carry a cold_start section. The headline number is the new snapshot
// open against the old replay open — the "how much faster is a restart
// now" question the trajectory exists to answer.
func compareColdStart(old, cur *coldStartStats) {
	if old == nil || cur == nil {
		return
	}
	fmt.Printf("%-28s %12.1f %12.1f %9s\n", "cold replay open (ms)",
		old.ReplayOpenMillis, cur.ReplayOpenMillis, deltaPct(old.ReplayOpenMillis, cur.ReplayOpenMillis, false))
	if cur.SnapshotOpenMillis > 0 {
		fmt.Printf("%-28s %12.1f %12.1f %9s\n", "cold snapshot open (ms)",
			old.SnapshotOpenMillis, cur.SnapshotOpenMillis,
			deltaPct(old.SnapshotOpenMillis, cur.SnapshotOpenMillis, false))
		if old.SnapshotOpenMillis == 0 && cur.SnapshotOpenMillis > 0 {
			fmt.Printf("%-28s %35.1fx\n", "snapshot vs baseline replay",
				old.ReplayOpenMillis/cur.SnapshotOpenMillis)
		}
	}
	if cur.MmapOpenMillis > 0 {
		fmt.Printf("%-28s %12.1f %12.1f %9s\n", "cold mmap open (ms)",
			old.MmapOpenMillis, cur.MmapOpenMillis,
			deltaPct(old.MmapOpenMillis, cur.MmapOpenMillis, false))
	}
	fmt.Printf("%-28s %12d %12d %9s\n", "segment bytes",
		old.SegmentBytes, cur.SegmentBytes,
		deltaPct(float64(old.SegmentBytes), float64(cur.SegmentBytes), false))
}

// deltaPct formats the (new-old)/old percentage with a ✓ when it moved in
// the better direction.
func deltaPct(o, n float64, higherIsBetter bool) string {
	if o == 0 {
		return "~"
	}
	pct := 100 * (n - o) / o
	mark := ""
	if (higherIsBetter && pct > 0) || (!higherIsBetter && pct < 0) {
		mark = " ✓"
	}
	return fmt.Sprintf("%+.1f%%%s", pct, mark)
}

// nowStamp is the human-readable timestamp recorded in reports.
func nowStamp() string { return time.Now().UTC().Format(time.RFC3339) }
