package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// benchReport is the machine-readable payload written to
// BENCH_retrieval.json by every -ingest run. It records the workload shape
// (corpus size, shard count, backend, ef) next to the measurements so a
// later run can refuse to diff apples against oranges, and optionally
// embeds the baseline it was compared to, making the file a self-contained
// before/after record of the repo's perf trajectory.
type benchReport struct {
	GeneratedAt string       `json:"generated_at"`
	Corpus      int          `json:"corpus_tables"`
	Shards      int          `json:"shards"`
	Backend     string       `json:"backend"`
	Ef          int          `json:"ef"`
	Ingest      ingestStats  `json:"ingest"`
	Query       queryStats   `json:"query"`
	Baseline    *benchReport `json:"baseline,omitempty"`
}

// ingestStats is bulk-ingest throughput: the sequential seed path vs. the
// concurrent sharded path over the same corpus.
type ingestStats struct {
	SeqTablesPerSec float64 `json:"seq_tables_per_sec"`
	ParTablesPerSec float64 `json:"par_tables_per_sec"`
	Speedup         float64 `json:"speedup"`
}

// queryStats is hybrid query-path cost: latency percentiles over the bench
// query mix plus per-operation heap traffic measured via runtime.MemStats
// around the timed loop.
type queryStats struct {
	Count       int     `json:"count"`
	K           int     `json:"k"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	MaxMicros   float64 `json:"max_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// writeReport marshals the report to path (indented, trailing newline).
func writeReport(path string, r benchReport) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// loadReport reads a previously written benchReport.
func loadReport(path string) (benchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var r benchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return benchReport{}, fmt.Errorf("corrupt bench report %s: %w", path, err)
	}
	return r, nil
}

// compareReports prints a benchstat-style old-vs-new table. Lower is better
// for every row except the throughput and speedup rows, where the sign of
// "better" flips; the delta column is always (new-old)/old.
func compareReports(old, cur benchReport) {
	if old.Corpus != cur.Corpus || old.Backend != cur.Backend {
		fmt.Printf("note: baseline workload differs (corpus %d/%s vs %d/%s); deltas are indicative only\n",
			old.Corpus, old.Backend, cur.Corpus, cur.Backend)
	}
	fmt.Printf("%-28s %12s %12s %9s\n", "metric", "old", "new", "delta")
	row := func(name string, o, n float64, higherIsBetter bool) {
		delta := "~"
		if o != 0 {
			pct := 100 * (n - o) / o
			mark := ""
			if (higherIsBetter && pct > 0) || (!higherIsBetter && pct < 0) {
				mark = " ✓"
			}
			delta = fmt.Sprintf("%+.1f%%%s", pct, mark)
		}
		fmt.Printf("%-28s %12.1f %12.1f %9s\n", name, o, n, delta)
	}
	row("ingest seq (tables/sec)", old.Ingest.SeqTablesPerSec, cur.Ingest.SeqTablesPerSec, true)
	row("ingest par (tables/sec)", old.Ingest.ParTablesPerSec, cur.Ingest.ParTablesPerSec, true)
	row("query p50 (µs)", old.Query.P50Micros, cur.Query.P50Micros, false)
	row("query p99 (µs)", old.Query.P99Micros, cur.Query.P99Micros, false)
	row("query allocs/op", old.Query.AllocsPerOp, cur.Query.AllocsPerOp, false)
	row("query bytes/op", old.Query.BytesPerOp, cur.Query.BytesPerOp, false)
}

// nowStamp is the human-readable timestamp recorded in reports.
func nowStamp() string { return time.Now().UTC().Format(time.RFC3339) }
