// Command pneuma-bench regenerates every table and figure of the paper's
// evaluation (§4) over the synthetic KramaBench-style datasets:
//
//	pneuma-bench             # everything
//	pneuma-bench -table 1    # dataset characteristics
//	pneuma-bench -table 2    # token usage and costs
//	pneuma-bench -table 3    # accuracy comparison (plus the O3 in-text result)
//	pneuma-bench -figure 4   # convergence scatter, archaeology
//	pneuma-bench -figure 5   # convergence scatter, environment
//	pneuma-bench -latency    # the latency trade-off
//
// Beyond the paper artifacts, -ingest benchmarks the sharded IR stack
// itself: bulk-ingest throughput (sequential seed path vs. concurrent
// sharded path) and retrieval latency percentiles on a synthetic corpus:
//
//	pneuma-bench -ingest                  # 500-table corpus, memory backend
//	pneuma-bench -ingest -tables 2000
//	pneuma-bench -ingest -backend disk    # append-only segment files (+ flush cost)
//	pneuma-bench -ingest -ef 128          # wider HNSW beam (recall vs. latency)
//
// Every -ingest run also writes a machine-readable report (ingest
// throughput, query latency percentiles, allocs/op) to the -json path, and
// -baseline diffs the fresh numbers against a previously committed report
// in benchstat-style columns:
//
//	pneuma-bench -ingest -json BENCH_retrieval.json -baseline BENCH_baseline.json
//
// -cold measures the disk backend's cold-start path: how long reopening a
// persisted index takes from its state snapshots (bulk load) versus by
// full segment replay (graph rebuild), proving snapshot/replay/memory
// result parity along the way, and merges a cold_start section into the
// same report:
//
//	pneuma-bench -cold                    # 1000-table corpus, temp dir
//	pneuma-bench -cold -tables 5000 -index-dir ./idx
//	pneuma-bench -cold -json BENCH_retrieval.json -baseline BENCH_baseline.json
//
// -compaction measures what a segment rewrite costs the write path: the
// same delete-then-stream workload run with the background rewrite
// (default) and with the inline pre-background behaviour, reporting the
// max writer stall each mode inflicted and merging a compaction section
// into the report. Every -ingest run additionally records the machine's
// detected CPU features and a kernel microbenchmark (dispatched SIMD tier
// versus forced scalar, every int8 dispatch rung, and batched versus
// single-call arena kernels) in cpu and kernels sections; -kernels
// refreshes just those two sections without touching the
// corpus-dependent ones:
//
//	pneuma-bench -compaction
//	pneuma-bench -compaction -tables 2000 -json BENCH_retrieval.json
//	pneuma-bench -kernels -json BENCH_retrieval.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"pneuma/internal/harness"
	"pneuma/internal/hnsw"
	"pneuma/internal/kramabench"
	"pneuma/internal/retriever"
	"pneuma/internal/table"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tableN := flag.Int("table", 0, "regenerate one table (1, 2 or 3); 0 = all")
	figureN := flag.Int("figure", 0, "regenerate one figure (4 or 5); 0 = all")
	latency := flag.Bool("latency", false, "print only the latency trade-off")
	ingest := flag.Bool("ingest", false, "benchmark sharded ingest throughput and retrieval latency")
	cold := flag.Bool("cold", false, "benchmark disk-backend cold start: snapshot open vs replay rebuild")
	mixed := flag.Bool("mixed", false, "benchmark query latency under a live ingest stream vs read-only")
	compaction := flag.Bool("compaction", false, "benchmark max writer stall during segment compaction: background vs inline rewrite")
	serve := flag.Bool("serve", false, "benchmark the HTTP serving layer: over-wire vs in-process latency and shed rate at 2x saturation")
	satFor := flag.Duration("sat-duration", 2*time.Second, "length of the -serve saturation probe")
	serveSlots := flag.Int("serve-slots", 4, "scheduler slots (WithMaxConcurrent) for the -serve run")
	serveQueue := flag.Int("serve-queue", 0, "scheduler queue bound (WithMaxQueue) for the -serve run (0 = same as slots)")
	readers := flag.Int("readers", 4, "reader goroutines for the -mixed workload")
	ingestTables := flag.Int("ingest-tables", 0, "tables streamed during the -mixed phase (0 = corpus/4)")
	think := flag.Duration("think", 5*time.Millisecond, "per-reader sleep between -mixed queries (closed loop with think time)")
	ingestRate := flag.Float64("ingest-rate", 100, "offered -mixed stream rate in tables/sec (0 = unpaced bulk load)")
	nTables := flag.Int("tables", 500, "synthetic corpus size for -ingest (-cold defaults to 1000)")
	shards := flag.Int("shards", 0, "shard count for -ingest/-cold (0 = GOMAXPROCS-derived default)")
	workers := flag.Int("workers", 0, "embedding workers for -ingest (0 = GOMAXPROCS)")
	backendName := flag.String("backend", "", "shard backend for -ingest: memory (default) or disk")
	indexDir := flag.String("index-dir", "", "segment directory for -backend disk and -cold (default: temp dir)")
	ef := flag.Int("ef", 0, "HNSW query beam width for -ingest (0 = default 64)")
	rounds := flag.Int("rounds", 25, "query-mix repetitions for the -ingest latency measurement")
	coldRounds := flag.Int("cold-rounds", 5, "open repetitions per path for the -cold measurement (median reported)")
	jsonPath := flag.String("json", "BENCH_retrieval.json", "write the -ingest/-cold report here (empty = skip)")
	baselinePath := flag.String("baseline", "", "diff the -ingest/-cold report against this committed report")
	quantize := flag.Bool("quantize", false, "add the int8 speed-tier section to -ingest: quantized latency, recall@10 vs unquantized, arena bytes")
	kernels := flag.Bool("kernels", false, "refresh only the cpu and kernels report sections: single vs batched kernels across every dispatch tier (scalar/SSE2/AVX2, float32 and int8)")
	mmap := flag.Bool("mmap", false, "use WithMmap for -ingest disk opens; -cold always measures the mmap series where supported")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fail(err)
			runtime.GC() // report live objects, not garbage awaiting collection
			fail(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	if *kernels {
		runKernelsMode(*jsonPath)
		return
	}

	if *cold {
		tables := *nTables
		if tables == 500 && !flagProvided("tables") {
			tables = 1000
		}
		runColdBench(ctx, coldConfig{
			tables:   tables,
			shards:   *shards,
			rounds:   *coldRounds,
			indexDir: *indexDir,
			jsonPath: *jsonPath,
			baseline: *baselinePath,
		})
		return
	}

	if *compaction {
		runCompactionBench(ctx, compactionConfig{
			tables:   *nTables,
			jsonPath: *jsonPath,
			baseline: *baselinePath,
		})
		return
	}

	if *serve {
		runServeBench(ctx, serveConfig{
			tables:        *nTables,
			rounds:        *rounds,
			maxConcurrent: *serveSlots,
			maxQueue:      *serveQueue,
			satFor:        *satFor,
			jsonPath:      *jsonPath,
			baseline:      *baselinePath,
		})
		return
	}

	if *mixed {
		backend, err := retriever.ParseBackend(*backendName)
		fail(err)
		runMixedBench(ctx, mixedConfig{
			tables:     *nTables,
			shards:     *shards,
			workers:    *workers,
			backend:    backend,
			indexDir:   *indexDir,
			readers:    *readers,
			ingestN:    *ingestTables,
			ingestRate: *ingestRate,
			rounds:     *rounds,
			think:      *think,
			jsonPath:   *jsonPath,
			baseline:   *baselinePath,
		})
		return
	}

	if *ingest {
		backend, err := retriever.ParseBackend(*backendName)
		fail(err)
		runIngestBench(ctx, ingestConfig{
			tables:   *nTables,
			shards:   *shards,
			workers:  *workers,
			backend:  backend,
			indexDir: *indexDir,
			ef:       *ef,
			rounds:   *rounds,
			jsonPath: *jsonPath,
			baseline: *baselinePath,
			quantize: *quantize,
			mmap:     *mmap,
		})
		return
	}

	wantAll := *tableN == 0 && *figureN == 0 && !*latency

	arch := kramabench.Archaeology()
	env := kramabench.Environment()

	// Table 1 needs no simulation.
	if *tableN == 1 || wantAll {
		fmt.Println(harness.RenderTable1([]harness.Table1Row{
			harness.Table1For("Archeology", arch),
			harness.Table1For("Environment", env),
		}))
		if *tableN == 1 {
			return
		}
	}

	needArch := wantAll || *figureN == 4 || *tableN == 2 || *tableN == 3 || *latency
	needEnv := wantAll || *figureN == 5 || *tableN == 2 || *tableN == 3 || *latency

	var archEval, envEval harness.DatasetEvaluation
	var err error
	if needArch {
		fmt.Fprintln(os.Stderr, "running archaeology evaluation (12 questions x 4 systems + RQ2)...")
		archEval, err = harness.RunFullEvaluation(ctx, "Archeology", arch, kramabench.ArchaeologyQuestions(arch), harness.EvalOptions{})
		fail(err)
	}
	if needEnv {
		fmt.Fprintln(os.Stderr, "running environment evaluation (20 questions x 4 systems + RQ2)...")
		envEval, err = harness.RunFullEvaluation(ctx, "Environment", env, kramabench.EnvironmentQuestions(env), harness.EvalOptions{})
		fail(err)
	}

	if *figureN == 4 || wantAll {
		fmt.Println(harness.RenderFigure(
			"Figure 4: Median Turns to Convergence vs. Convergence Percentage (Archeology)",
			archEval.Convergence))
	}
	if *figureN == 5 || wantAll {
		fmt.Println(harness.RenderFigure(
			"Figure 5: Median Turns to Convergence vs. Convergence Percentage (Environment)",
			envEval.Convergence))
	}
	if *tableN == 2 || wantAll {
		fmt.Println(harness.RenderTable2([]harness.TokenUsageRow{archEval.Tokens, envEval.Tokens}))
	}
	if *tableN == 3 || wantAll {
		fmt.Println(harness.RenderTable3(archEval.RQ2, envEval.RQ2))
		fmt.Println(harness.RenderO3(archEval.O3, envEval.O3))
	}
	if *latency || wantAll {
		fmt.Println(harness.RenderLatency(
			[]harness.TokenUsageRow{archEval.Tokens, envEval.Tokens},
			[]string{"FTS", "Pneuma-Retriever"}))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-bench:", err)
		os.Exit(1)
	}
}

// flagProvided reports whether the named flag was set explicitly.
func flagProvided(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// ingestConfig bundles the -ingest workload knobs.
type ingestConfig struct {
	tables   int
	shards   int
	workers  int
	backend  retriever.Backend
	indexDir string
	ef       int
	rounds   int
	jsonPath string
	baseline string
	quantize bool
	mmap     bool
}

// runIngestBench compares the sequential seed ingest path (one shard, one
// worker, one table at a time) against the concurrent sharded bulk path on
// the same synthetic corpus, then reports retrieval latency percentiles
// and per-query heap traffic on the sharded index. The parallel index uses
// the selected backend; for the disk backend the flush (fsync) cost is
// reported separately so ingest throughput stays comparable with the
// memory backend. The measurements are written to cfg.jsonPath and, when
// cfg.baseline names a committed report, diffed against it.
func runIngestBench(ctx context.Context, cfg ingestConfig) {
	if cfg.rounds < 1 {
		cfg.rounds = 1
	}
	n := cfg.tables
	tables := kramabench.SyntheticSlice(n)

	fmt.Printf("Ingest benchmark: %d synthetic tables (%s backend)\n\n", n, cfg.backend)

	seq := retriever.New(retriever.WithShards(1), retriever.WithWorkers(1))
	start := time.Now()
	for _, t := range tables {
		fail(seq.IndexTable(ctx, t))
	}
	seqDur := time.Since(start)

	popts := []retriever.Option{retriever.WithBackend(cfg.backend)}
	if cfg.shards > 0 {
		popts = append(popts, retriever.WithShards(cfg.shards))
	}
	if cfg.workers > 0 {
		popts = append(popts, retriever.WithWorkers(cfg.workers))
	}
	if cfg.indexDir != "" {
		popts = append(popts, retriever.WithDir(cfg.indexDir))
	}
	if cfg.ef > 0 {
		popts = append(popts, retriever.WithEf(cfg.ef))
	}
	if cfg.mmap {
		popts = append(popts, retriever.WithMmap(true))
	}
	par, err := retriever.Open(popts...)
	fail(err)
	if par.Len() > 0 {
		// A pre-populated index would turn the timed ingest into
		// replacement writes over replayed state — not the workload the
		// numbers claim to measure.
		fmt.Fprintf(os.Stderr, "pneuma-bench: index dir %s already holds %d documents; point -index-dir at a fresh directory\n",
			par.Dir(), par.Len())
		os.Exit(2)
	}
	start = time.Now()
	fail(par.IndexTables(ctx, tables))
	parDur := time.Since(start)

	fmt.Printf("  sequential (1 shard, 1 worker):  %8v  %7.0f tables/sec\n",
		seqDur.Round(time.Millisecond), float64(n)/seqDur.Seconds())
	fmt.Printf("  parallel   (%d shards, pooled):   %8v  %7.0f tables/sec\n",
		par.NumShards(), parDur.Round(time.Millisecond), float64(n)/parDur.Seconds())
	fmt.Printf("  speedup: %.2fx\n", seqDur.Seconds()/parDur.Seconds())
	if cfg.backend == retriever.Disk {
		start = time.Now()
		fail(par.Flush())
		fmt.Printf("  flush (fsync %d segment files): %8v   [%s]\n",
			par.NumShards(), time.Since(start).Round(time.Millisecond), par.Dir())
	}
	fmt.Println()

	queries := kramabench.RetrievalQueries()
	const k = 10
	// Warm-up pass: fault in the scratch pools and stabilize the caches so
	// the measured loop sees steady state, which is what allocs/op claims.
	for _, q := range queries {
		if _, err := par.Search(ctx, q, k); err != nil {
			fail(err)
		}
	}
	// The measured loop runs under a non-cancellable context on purpose:
	// that is the allocation-free steady-state serving path whose
	// allocs/op the committed reports claim (a cancellable context buys
	// prompt abandonment at the cost of a completion channel per query).
	bgCtx := context.Background()
	lat := make([]time.Duration, 0, cfg.rounds*len(queries))
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for r := 0; r < cfg.rounds; r++ {
		for _, q := range queries {
			qs := time.Now()
			if _, err := par.Search(bgCtx, q, k); err != nil {
				fail(err)
			}
			lat = append(lat, time.Since(qs))
		}
	}
	runtime.ReadMemStats(&ms1)
	nq := len(lat)
	allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(nq)
	bytesPerOp := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(nq)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
	fmt.Printf("Retrieval latency over %d queries (k=%d, %d shards, ef=%d):\n", nq, k, par.NumShards(), par.Ef())
	fmt.Printf("  p50 %v   p99 %v   max %v\n",
		p(0.50).Round(time.Microsecond), p(0.99).Round(time.Microsecond), lat[nq-1].Round(time.Microsecond))
	fmt.Printf("  %.0f allocs/op   %.0f bytes/op\n", allocsPerOp, bytesPerOp)
	fmt.Println()

	report := benchReport{
		GeneratedAt: nowStamp(),
		Corpus:      n,
		Shards:      par.NumShards(),
		Backend:     string(cfg.backend),
		Ef:          par.Ef(),
		CPU:         cpuSection(),
		Kernels:     runKernelSection(),
		Ingest: ingestStats{
			SeqTablesPerSec: float64(n) / seqDur.Seconds(),
			ParTablesPerSec: float64(n) / parDur.Seconds(),
			Speedup:         seqDur.Seconds() / parDur.Seconds(),
		},
		Query: queryStats{
			Count:       nq,
			K:           k,
			P50Micros:   float64(p(0.50)) / float64(time.Microsecond),
			P99Micros:   float64(p(0.99)) / float64(time.Microsecond),
			MaxMicros:   float64(lat[nq-1]) / float64(time.Microsecond),
			AllocsPerOp: allocsPerOp,
			BytesPerOp:  bytesPerOp,
		},
	}
	if cfg.quantize {
		report.Quantized = runQuantSection(ctx, cfg, tables, queries, k)
	}
	if cfg.baseline != "" {
		// Re-read the baseline at report time (never a copy captured
		// earlier in the run) and refuse a shape mismatch outright — a
		// silently diffed wrong-shape baseline is how stale numbers drift
		// into committed reports.
		old, err := loadReport(cfg.baseline)
		fail(err)
		fail(checkBaselineShape(old, report))
		old.Baseline = nil
		report.Baseline = &old
		fmt.Println()
		compareReports(old, report)
	}
	if cfg.jsonPath != "" {
		// Preserve sections a previous run of the other mode recorded in
		// the same report file.
		if prev, err := loadReport(cfg.jsonPath); err == nil {
			if prev.ColdStart != nil {
				report.ColdStart = prev.ColdStart
			}
			if report.Quantized == nil && prev.Quantized != nil {
				report.Quantized = prev.Quantized
			}
			if prev.Mixed != nil {
				report.Mixed = prev.Mixed
			}
			if prev.Compaction != nil {
				report.Compaction = prev.Compaction
			}
			if prev.Serving != nil {
				report.Serving = prev.Serving
			}
		}
		fail(writeReport(cfg.jsonPath, report))
		fmt.Printf("\nreport written to %s\n", cfg.jsonPath)
	}
}

// runQuantSection measures the int8 speed tier against the same corpus
// and query mix as the main -ingest run: hybrid latency and heap traffic
// on a quantized index, vector-only recall@10 against the unquantized
// index (hybrid RRF would mask vector-side differences), and the arena
// footprint of both representations. Always memory-backed — the tier
// changes the query path, not storage, and this keeps the section
// comparable across -backend choices.
func runQuantSection(ctx context.Context, cfg ingestConfig, tables []*table.Table, queries []string, k int) *quantStats {
	fmt.Println()
	fmt.Printf("Quantized speed tier (int8 traversal, float32 rescore ×%d):\n", hnsw.DefaultRescoreFactor)

	qopts := []retriever.Option{retriever.WithQuantize(true)}
	if cfg.shards > 0 {
		qopts = append(qopts, retriever.WithShards(cfg.shards))
	}
	if cfg.workers > 0 {
		qopts = append(qopts, retriever.WithWorkers(cfg.workers))
	}
	if cfg.ef > 0 {
		qopts = append(qopts, retriever.WithEf(cfg.ef))
	}
	quant := retriever.New(qopts...)
	defer quant.Close()
	fail(quant.IndexTables(ctx, tables))

	bgCtx := context.Background()
	for _, q := range queries {
		_, err := quant.Search(bgCtx, q, k)
		fail(err)
	}
	// Drain the ingest's garbage before timing: on a small machine a
	// background mark phase left over from the bulk build lands on the
	// tail percentiles of the measured loop otherwise.
	runtime.GC()
	lat := make([]time.Duration, 0, cfg.rounds*len(queries))
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for r := 0; r < cfg.rounds; r++ {
		for _, q := range queries {
			qs := time.Now()
			if _, err := quant.Search(bgCtx, q, k); err != nil {
				fail(err)
			}
			lat = append(lat, time.Since(qs))
		}
	}
	runtime.ReadMemStats(&ms1)
	nq := len(lat)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }

	// Vector-only recall@10: two fresh indexes differing only in the knob.
	vopts := append(qopts[1:len(qopts):len(qopts)], retriever.WithMode(retriever.ModeVectorOnly))
	plainV := retriever.New(vopts...)
	defer plainV.Close()
	quantV := retriever.New(append(vopts, retriever.WithQuantize(true))...)
	defer quantV.Close()
	fail(plainV.IndexTables(ctx, tables))
	fail(quantV.IndexTables(ctx, tables))
	var hit, total int
	for _, q := range queries {
		exact, err := plainV.Search(bgCtx, q, k)
		fail(err)
		approx, err := quantV.Search(bgCtx, q, k)
		fail(err)
		want := make(map[string]bool, len(exact))
		for _, d := range exact {
			want[d.ID] = true
		}
		for _, d := range approx {
			if want[d.ID] {
				hit++
			}
		}
		total += len(exact)
	}
	recall := 1.0
	if total > 0 {
		recall = float64(hit) / float64(total)
	}

	fBytes, qBytes := quant.ArenaBytes()
	ratio := 0.0
	if fBytes > 0 {
		ratio = float64(qBytes) / float64(fBytes)
	}
	fmt.Printf("  p50 %v   p99 %v   %.0f allocs/op\n",
		p(0.50).Round(time.Microsecond), p(0.99).Round(time.Microsecond),
		float64(ms1.Mallocs-ms0.Mallocs)/float64(nq))
	fmt.Printf("  recall@%d vs unquantized: %.4f (vector-only, %d queries)\n", k, recall, len(queries))
	fmt.Printf("  arena: float32 %.1f MiB → int8 %.1f MiB (%.0f%%)\n",
		float64(fBytes)/(1<<20), float64(qBytes)/(1<<20), ratio*100)

	return &quantStats{
		Count:             nq,
		K:                 k,
		RescoreFactor:     hnsw.DefaultRescoreFactor,
		P50Micros:         float64(p(0.50)) / float64(time.Microsecond),
		P99Micros:         float64(p(0.99)) / float64(time.Microsecond),
		MaxMicros:         float64(lat[nq-1]) / float64(time.Microsecond),
		AllocsPerOp:       float64(ms1.Mallocs-ms0.Mallocs) / float64(nq),
		BytesPerOp:        float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(nq),
		RecallAt10:        recall,
		Float32ArenaBytes: fBytes,
		Int8ArenaBytes:    qBytes,
		ArenaRatio:        ratio,
	}
}
