// Command pneuma-bench regenerates every table and figure of the paper's
// evaluation (§4) over the synthetic KramaBench-style datasets:
//
//	pneuma-bench             # everything
//	pneuma-bench -table 1    # dataset characteristics
//	pneuma-bench -table 2    # token usage and costs
//	pneuma-bench -table 3    # accuracy comparison (plus the O3 in-text result)
//	pneuma-bench -figure 4   # convergence scatter, archaeology
//	pneuma-bench -figure 5   # convergence scatter, environment
//	pneuma-bench -latency    # the latency trade-off
package main

import (
	"flag"
	"fmt"
	"os"

	"pneuma/internal/harness"
	"pneuma/internal/kramabench"
)

func main() {
	tableN := flag.Int("table", 0, "regenerate one table (1, 2 or 3); 0 = all")
	figureN := flag.Int("figure", 0, "regenerate one figure (4 or 5); 0 = all")
	latency := flag.Bool("latency", false, "print only the latency trade-off")
	flag.Parse()

	wantAll := *tableN == 0 && *figureN == 0 && !*latency

	arch := kramabench.Archaeology()
	env := kramabench.Environment()

	// Table 1 needs no simulation.
	if *tableN == 1 || wantAll {
		fmt.Println(harness.RenderTable1([]harness.Table1Row{
			harness.Table1For("Archeology", arch),
			harness.Table1For("Environment", env),
		}))
		if *tableN == 1 {
			return
		}
	}

	needArch := wantAll || *figureN == 4 || *tableN == 2 || *tableN == 3 || *latency
	needEnv := wantAll || *figureN == 5 || *tableN == 2 || *tableN == 3 || *latency

	var archEval, envEval harness.DatasetEvaluation
	var err error
	if needArch {
		fmt.Fprintln(os.Stderr, "running archaeology evaluation (12 questions x 4 systems + RQ2)...")
		archEval, err = harness.RunFullEvaluation("Archeology", arch, kramabench.ArchaeologyQuestions(arch), harness.EvalOptions{})
		fail(err)
	}
	if needEnv {
		fmt.Fprintln(os.Stderr, "running environment evaluation (20 questions x 4 systems + RQ2)...")
		envEval, err = harness.RunFullEvaluation("Environment", env, kramabench.EnvironmentQuestions(env), harness.EvalOptions{})
		fail(err)
	}

	if *figureN == 4 || wantAll {
		fmt.Println(harness.RenderFigure(
			"Figure 4: Median Turns to Convergence vs. Convergence Percentage (Archeology)",
			archEval.Convergence))
	}
	if *figureN == 5 || wantAll {
		fmt.Println(harness.RenderFigure(
			"Figure 5: Median Turns to Convergence vs. Convergence Percentage (Environment)",
			envEval.Convergence))
	}
	if *tableN == 2 || wantAll {
		fmt.Println(harness.RenderTable2([]harness.TokenUsageRow{archEval.Tokens, envEval.Tokens}))
	}
	if *tableN == 3 || wantAll {
		fmt.Println(harness.RenderTable3(archEval.RQ2, envEval.RQ2))
		fmt.Println(harness.RenderO3(archEval.O3, envEval.O3))
	}
	if *latency || wantAll {
		fmt.Println(harness.RenderLatency(
			[]harness.TokenUsageRow{archEval.Tokens, envEval.Tokens},
			[]string{"FTS", "Pneuma-Retriever"}))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pneuma-bench:", err)
		os.Exit(1)
	}
}
