package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"pneuma/internal/docs"
	"pneuma/internal/kramabench"
	"pneuma/internal/retriever"
)

// compactionConfig bundles the -compaction workload knobs.
type compactionConfig struct {
	tables   int
	jsonPath string
	baseline string
}

// runCompactionBench measures what a segment rewrite costs the write path.
// The same workload runs twice on the disk backend: bulk-ingest a corpus,
// delete 60% of it (tripping the compaction threshold), then stream fresh
// documents one at a time while the rewrite races them. The background
// mode (default) moves the rewrite onto the group-commit flusher and the
// writer only ever waits for one bounded lock slice; the inline mode
// (WithBackgroundCompaction(false)) is the pre-background behaviour where
// the flushing writer performs the whole rewrite under the shard lock.
// The per-mode max writer stall comes from Retriever.CompactionStats,
// which times every lock hold taken on account of compaction work.
func runCompactionBench(ctx context.Context, cfg compactionConfig) {
	if cfg.tables < 16 {
		cfg.tables = 16
	}
	deleted := cfg.tables * 6 / 10
	streamed := cfg.tables / 4
	fmt.Printf("Compaction stall benchmark: %d tables, delete %d, stream %d docs during rewrite\n\n",
		cfg.tables, deleted, streamed)

	bg := compactionWorkload(ctx, cfg.tables, deleted, streamed, true)
	inline := compactionWorkload(ctx, cfg.tables, deleted, streamed, false)

	section := &compactionBench{
		Tables:                   cfg.tables,
		Deleted:                  deleted,
		Streamed:                 streamed,
		BackgroundRuns:           bg.Runs,
		BackgroundReclaimed:      bg.Reclaimed,
		BackgroundMaxStallMicros: float64(bg.MaxStall) / float64(time.Microsecond),
		InlineMaxStallMicros:     float64(inline.MaxStall) / float64(time.Microsecond),
	}
	if section.InlineMaxStallMicros > 0 {
		section.StallRatio = section.BackgroundMaxStallMicros / section.InlineMaxStallMicros
	}
	fmt.Printf("  background: %d runs, %d dead records reclaimed, max writer stall %v\n",
		bg.Runs, bg.Reclaimed, bg.MaxStall.Round(time.Microsecond))
	fmt.Printf("  inline:     %d runs, %d dead records reclaimed, max writer stall %v\n",
		inline.Runs, inline.Reclaimed, inline.MaxStall.Round(time.Microsecond))
	fmt.Printf("  background stall / inline stall: %.2fx\n", section.StallRatio)

	if cfg.baseline != "" {
		old, err := loadReport(cfg.baseline)
		fail(err)
		if old.Compaction != nil {
			fmt.Println()
			fmt.Printf("%-28s %12s %12s %9s\n", "metric", "old", "new", "delta")
			fmt.Printf("%-28s %12.1f %12.1f %9s\n", "compact bg stall (µs)",
				old.Compaction.BackgroundMaxStallMicros, section.BackgroundMaxStallMicros,
				deltaPct(old.Compaction.BackgroundMaxStallMicros, section.BackgroundMaxStallMicros, false))
			fmt.Printf("%-28s %12.1f %12.1f %9s\n", "compact inline stall (µs)",
				old.Compaction.InlineMaxStallMicros, section.InlineMaxStallMicros,
				deltaPct(old.Compaction.InlineMaxStallMicros, section.InlineMaxStallMicros, false))
		}
	}
	if cfg.jsonPath != "" {
		// Merge: keep the sections the other modes recorded in the report.
		report, err := loadReport(cfg.jsonPath)
		if err != nil {
			report = benchReport{Corpus: cfg.tables, Backend: string(retriever.Disk)}
		}
		report.GeneratedAt = nowStamp()
		report.Compaction = section
		if report.CPU == nil {
			report.CPU = cpuSection()
		}
		fail(writeReport(cfg.jsonPath, report))
		fmt.Printf("\ncompaction section written to %s\n", cfg.jsonPath)
	}
}

// compactionWorkload runs the delete-then-stream workload on a fresh
// single-shard disk index and returns its compaction counters. One shard
// keeps the stall attribution unambiguous: every record lands on the
// segment being rewritten.
func compactionWorkload(ctx context.Context, tables, deleted, streamed int, background bool) retriever.CompactionStats {
	dir, err := os.MkdirTemp("", "pneuma-compact-*")
	fail(err)
	defer os.RemoveAll(dir)

	corpus := kramabench.SyntheticSlice(tables)
	r, err := retriever.Open(
		retriever.WithShards(1),
		retriever.WithBackend(retriever.Disk),
		retriever.WithDir(dir),
		retriever.WithSyncBytes(4096),
		retriever.WithBackgroundCompaction(background),
	)
	fail(err)
	defer r.Close()
	fail(r.IndexTables(ctx, corpus))
	fail(r.Flush())

	for _, t := range corpus[:deleted] {
		r.Delete("table:" + t.Schema.Name)
	}
	// In background mode the deletes above already scheduled the rewrite on
	// the flusher, so this stream races it; inline mode pays at the Flush.
	for i := 0; i < streamed; i++ {
		fail(r.IndexDocument(ctx, docs.Document{
			ID:      fmt.Sprintf("stream:%04d", i),
			Title:   fmt.Sprintf("streamed doc %d", i),
			Content: fmt.Sprintf("document %d arriving while the segment compacts", i),
		}))
		time.Sleep(200 * time.Microsecond)
	}
	fail(r.Flush())
	cs := r.CompactionStats()
	if cs.Runs == 0 {
		fmt.Fprintf(os.Stderr, "pneuma-bench: no compaction ran (background=%v); workload too small for the threshold\n", background)
		os.Exit(1)
	}
	return cs
}
