package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pneuma"
	"pneuma/internal/kramabench"
	"pneuma/internal/server"
)

// serveConfig bundles the -serve workload knobs.
type serveConfig struct {
	tables        int
	rounds        int
	maxConcurrent int
	maxQueue      int
	satFor        time.Duration
	jsonPath      string
	baseline      string
}

// runServeBench prices the network layer: the same retrieval query mix
// measured in-process (Service.SearchIn, the function-call floor) and over
// the wire (GET /v1/search through internal/server on a loopback TCP
// listener), so the serving section answers "what does HTTP+JSON cost per
// request" with the substrate held constant. A third phase drives the
// server at 2× saturation — twice as many closed-loop clients as the
// scheduler has slots, against a bounded wait queue — and records the shed
// rate: the fraction of requests answered with the typed-503 backpressure
// instead of queueing without bound, plus the goodput the survivors saw.
func runServeBench(ctx context.Context, cfg serveConfig) {
	if cfg.rounds < 1 {
		cfg.rounds = 1
	}
	if cfg.maxConcurrent < 1 {
		cfg.maxConcurrent = 4
	}
	if cfg.maxQueue < 1 {
		// Half the slot count: tight enough that 2× saturation (up to
		// maxConcurrent requests waiting) provably crosses the bound.
		cfg.maxQueue = max(1, cfg.maxConcurrent/2)
	}
	if cfg.satFor <= 0 {
		cfg.satFor = 2 * time.Second
	}

	corpus := kramabench.Synthetic(cfg.tables)
	svc, err := pneuma.NewContext(ctx, corpus,
		pneuma.WithMaxConcurrent(cfg.maxConcurrent),
		pneuma.WithMaxQueue(cfg.maxQueue))
	fail(err)

	srv, err := server.New(server.Config{Service: svc})
	fail(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	fail(err)
	runCtx, stopServer := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(runCtx, ln) }()
	base := "http://" + ln.Addr().String()

	queries := kramabench.RetrievalQueries()
	const k = 10
	fmt.Printf("Serving benchmark: %d tables, %d scheduler slots, queue bound %d (%s)\n\n",
		cfg.tables, cfg.maxConcurrent, cfg.maxQueue, base)

	// Warm both paths (scratch pools, TCP connection, JSON encoder).
	client := &http.Client{}
	for _, q := range queries {
		_, err := svc.SearchIn(ctx, q, k)
		fail(err)
		fail(wireSearch(client, base, q, k))
	}

	// Phase 1: in-process floor — the same calls the handler makes, minus
	// the network, HTTP framing and JSON round-trip.
	inproc := make([]time.Duration, 0, cfg.rounds*len(queries))
	for round := 0; round < cfg.rounds; round++ {
		for _, q := range queries {
			start := time.Now()
			_, err := svc.SearchIn(ctx, q, k)
			fail(err)
			inproc = append(inproc, time.Since(start))
		}
	}

	// Phase 2: over the wire, one sequential client on a kept-alive
	// connection — wire latency without queueing effects.
	wire := make([]time.Duration, 0, cfg.rounds*len(queries))
	for round := 0; round < cfg.rounds; round++ {
		for _, q := range queries {
			start := time.Now()
			fail(wireSearch(client, base, q, k))
			wire = append(wire, time.Since(start))
		}
	}

	inP50, inP99 := percentiles(inproc)
	wireP50, wireP99 := percentiles(wire)
	fmt.Printf("  in-process: p50 %v   p99 %v   (%d queries)\n",
		inP50.Round(time.Microsecond), inP99.Round(time.Microsecond), len(inproc))
	fmt.Printf("  over wire:  p50 %v   p99 %v   (%d queries)\n",
		wireP50.Round(time.Microsecond), wireP99.Round(time.Microsecond), len(wire))
	fmt.Printf("  wire overhead at p50: %v\n", (wireP50 - inP50).Round(time.Microsecond))

	// Phase 3: 2× saturation. Twice as many unpaced closed-loop clients as
	// scheduler slots; each loops flat out for the window. Every request
	// carries a unique suffix so the IR cache cannot absorb the load —
	// each one pays the real retrieval fan-out and holds a slot for it.
	// With the wait queue bounded, the excess must surface as typed 503s,
	// not latency.
	clients := 2 * cfg.maxConcurrent
	var ok, shed, other atomic.Uint64
	var wg sync.WaitGroup
	satStart := time.Now()
	deadline := satStart.Add(cfg.satFor)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{}
			defer cl.CloseIdleConnections()
			for i := c; time.Now().Before(deadline); i++ {
				q := fmt.Sprintf("%s probe %d %d", queries[i%len(queries)], c, i)
				status, err := wireSearchStatus(cl, base, q, k)
				switch {
				case err != nil || (status != http.StatusOK && status != http.StatusServiceUnavailable):
					other.Add(1)
				case status == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					ok.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	satDur := time.Since(satStart)

	total := ok.Load() + shed.Load() + other.Load()
	shedRate := 0.0
	if total > 0 {
		shedRate = float64(shed.Load()) / float64(total)
	}
	goodput := float64(ok.Load()) / satDur.Seconds()
	fmt.Printf("  saturation: %d clients for %v — %d ok, %d shed (503), %d errors\n",
		clients, satDur.Round(time.Millisecond), ok.Load(), shed.Load(), other.Load())
	fmt.Printf("  shed rate at 2x saturation: %.1f%%   goodput %.0f req/s\n", 100*shedRate, goodput)
	if rej := svc.Stats().Scheduler.Rejected; rej == 0 && shed.Load() > 0 {
		fmt.Println("  note: all shedding happened at the HTTP layer (none from the scheduler queue bound)")
	}

	// Drain the server before reporting so the run exercises the full
	// lifecycle every time the bench runs.
	stopServer()
	fail(<-runDone)

	section := &servingStats{
		Queries:          len(inproc),
		K:                k,
		MaxConcurrent:    cfg.maxConcurrent,
		MaxQueue:         cfg.maxQueue,
		InProcP50Micros:  micros(inP50),
		InProcP99Micros:  micros(inP99),
		WireP50Micros:    micros(wireP50),
		WireP99Micros:    micros(wireP99),
		OverheadP50:      micros(wireP50 - inP50),
		SatClients:       clients,
		SatRequests:      total,
		SatShed:          shed.Load(),
		ShedRate:         shedRate,
		SatGoodputPerSec: goodput,
	}
	if cfg.baseline != "" {
		old, err := loadReport(cfg.baseline)
		fail(err)
		if old.Serving != nil {
			fmt.Println()
			compareServing(old.Serving, section)
		}
	}
	if cfg.jsonPath != "" {
		// Merge: keep the sections the other modes recorded in the report.
		report, err := loadReport(cfg.jsonPath)
		if err != nil {
			report = benchReport{Corpus: cfg.tables, Backend: "memory"}
		}
		report.GeneratedAt = nowStamp()
		report.Serving = section
		fail(writeReport(cfg.jsonPath, report))
		fmt.Printf("\nserving section written to %s\n", cfg.jsonPath)
	}
}

// wireSearch runs one /v1/search over the wire and fails on any non-200.
func wireSearch(client *http.Client, base, q string, k int) error {
	status, err := wireSearchStatus(client, base, q, k)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("GET /v1/search = %d, want 200", status)
	}
	return nil
}

// wireSearchStatus runs one /v1/search, drains the body (keep-alive) and
// returns the status code.
func wireSearchStatus(client *http.Client, base, q string, k int) (int, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/search?q=%s&k=%d", base, url.QueryEscape(q), k))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// percentiles returns the p50/p99 of a latency sample.
func percentiles(lats []time.Duration) (p50, p99 time.Duration) {
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p := func(q float64) time.Duration { return sorted[int(q*float64(len(sorted)-1))] }
	return p(0.50), p(0.99)
}

// micros converts a duration to float64 microseconds for the JSON report.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// compareServing prints the old-vs-new rows for the serving section.
func compareServing(old, cur *servingStats) {
	fmt.Printf("%-28s %12s %12s %9s\n", "metric", "old", "new", "delta")
	row := func(name string, o, n float64, higherIsBetter bool) {
		fmt.Printf("%-28s %12.1f %12.1f %9s\n", name, o, n, deltaPct(o, n, higherIsBetter))
	}
	row("in-process p50 (µs)", old.InProcP50Micros, cur.InProcP50Micros, false)
	row("wire p50 (µs)", old.WireP50Micros, cur.WireP50Micros, false)
	row("wire p99 (µs)", old.WireP99Micros, cur.WireP99Micros, false)
	row("wire overhead p50 (µs)", old.OverheadP50, cur.OverheadP50, false)
	row("saturation goodput (req/s)", old.SatGoodputPerSec, cur.SatGoodputPerSec, true)
}
