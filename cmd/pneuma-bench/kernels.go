package main

import (
	"fmt"
	"math/rand"
	"time"

	"pneuma/internal/vecmath"
)

// kernelDim is the vector length the kernel microbenchmark runs at. 384 is
// the reference dimensionality the SIMD work is specified against (a common
// sentence-embedding width, larger than the project default so the loop
// body dominates over call overhead); the end-to-end effect at the actual
// embedding width shows up in the query percentiles instead.
const kernelDim = 384

// kernelBatch is the candidate count for the batched-kernel measurement:
// the width of one layer-0 HNSW adjacency list (2·M with the default
// M=16), the batch shape traversal actually issues.
const kernelBatch = 32

// kernelArenaRows sizes the candidate arena the batched measurement walks.
const kernelArenaRows = 64

// cpuSection captures the vecmath dispatch state for the report.
func cpuSection() *cpuStats {
	return &cpuStats{
		Tier:             vecmath.Tier(),
		DetectedTier:     vecmath.DetectedTier(),
		Int8Tier:         vecmath.Int8Tier(),
		DetectedInt8Tier: vecmath.DetectedInt8Tier(),
		Features:         vecmath.Features(),
	}
}

// benchKernel returns f's per-call latency in nanoseconds: a warm-up pass
// then a timed loop long enough to amortize the clock reads.
func benchKernel(f func()) float64 {
	const iters = 200_000
	for i := 0; i < iters/10; i++ {
		f()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// benchKernelN is benchKernel for calls that score n candidates at once:
// the returned latency is per candidate, so batched and single-call
// numbers read on the same scale.
func benchKernelN(n int, f func()) float64 {
	const iters = 20_000
	for i := 0; i < iters/10; i++ {
		f()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters) / float64(n)
}

// Benchmark sinks keep the measured kernel calls observable so the loops
// cannot be optimized away.
var (
	kernelSink     float32
	kernelSinkInt8 int32
)

// runKernelSection microbenchmarks the hot kernels at kernelDim:
//
//   - the float32 distance kernels, dispatched tier versus forced scalar
//     over identical operands;
//   - the int8 quantized dot on every dispatch rung this CPU offers
//     (scalar, SSE2, AVX2 on amd64), walked via vecmath.ForceTiers so the
//     AVX2-over-SSE2 acceptance ratio is measured in-process;
//   - the batched arena kernels at kernelBatch candidates against a loop
//     of single calls on the best tier.
//
// Tier overrides are restored before the function returns — callers must
// not run queries concurrently with this measurement.
func runKernelSection() *kernelStats {
	rng := rand.New(rand.NewSource(42))
	a := make([]float32, kernelDim)
	b := make([]float32, kernelDim)
	for i := range a {
		a[i] = rng.Float32() - 0.5
		b[i] = rng.Float32() - 0.5
	}
	na := vecmath.Norm(a)
	nb := vecmath.Norm(b)
	a8 := make([]int8, kernelDim)
	b8 := make([]int8, kernelDim)
	for i := range a8 {
		a8[i] = int8(rng.Intn(255) - 127)
		b8[i] = int8(rng.Intn(255) - 127)
	}

	dot := func() { kernelSink = vecmath.Dot(a, b) }
	sql2 := func() { kernelSink = vecmath.SquaredL2(a, b) }
	cos := func() { kernelSink = vecmath.CosineWithNorms(a, b, na, nb) }
	dot8 := func() { kernelSinkInt8 = vecmath.DotInt8(a8, b8) }

	s := &kernelStats{Dim: kernelDim, Tier: vecmath.Tier(), Int8Tier: vecmath.Int8Tier()}
	s.DotNs = benchKernel(dot)
	s.SqrL2Ns = benchKernel(sql2)
	s.CosineNs = benchKernel(cos)

	vecmath.ForceScalar(true)
	s.DotScalarNs = benchKernel(dot)
	s.SqrL2ScalarNs = benchKernel(sql2)
	s.CosineScalarNs = benchKernel(cos)
	vecmath.ForceScalar(false)

	s.DotSpeedup = s.DotScalarNs / s.DotNs
	s.SqrL2Speedup = s.SqrL2ScalarNs / s.SqrL2Ns
	s.CosineSpeedup = s.CosineScalarNs / s.CosineNs

	// Walk every int8 rung in-process: ForceTiers pins the int8 half while
	// the float32 half stays on the detected tier.
	floatTier := vecmath.DetectedTier()
	int8Ns := map[string]float64{}
	for _, tier := range vecmath.Int8Tiers() {
		if !vecmath.ForceTiers(floatTier, tier) {
			continue
		}
		ns := benchKernel(dot8)
		int8Ns[tier] = ns
		switch tier {
		case "scalar":
			s.Int8ScalarNs = ns
		case "sse2":
			s.Int8SSE2Ns = ns
		case "avx2":
			s.Int8AVX2Ns = ns
		}
	}
	vecmath.ForceScalar(false)
	s.Int8Ns = int8Ns[vecmath.DetectedInt8Tier()]
	if s.Int8Ns > 0 {
		s.Int8Speedup = s.Int8ScalarNs / s.Int8Ns
	}
	if s.Int8AVX2Ns > 0 && s.Int8SSE2Ns > 0 {
		s.Int8AVX2VsSSE2 = s.Int8SSE2Ns / s.Int8AVX2Ns
	}

	// Batched arena kernels: one query against kernelBatch candidates out
	// of a kernelArenaRows-row arena, batch call vs single-call loop.
	arena := make([]float32, kernelArenaRows*kernelDim)
	arena8 := make([]int8, kernelArenaRows*kernelDim)
	for i := range arena {
		arena[i] = rng.Float32() - 0.5
	}
	for i := range arena8 {
		arena8[i] = int8(rng.Intn(255) - 127)
	}
	idxs := make([]int32, kernelBatch)
	for j := range idxs {
		idxs[j] = int32((j * 29) % kernelArenaRows)
	}
	outF := make([]float32, kernelBatch)
	out8 := make([]int32, kernelBatch)

	s.BatchSize = kernelBatch
	s.DotBatchNs = benchKernelN(kernelBatch, func() {
		vecmath.DotBatch(a, arena, kernelDim, idxs, outF)
	})
	s.DotLoopNs = benchKernelN(kernelBatch, func() {
		for _, ix := range idxs {
			kernelSink = vecmath.Dot(a, arena[int(ix)*kernelDim:int(ix)*kernelDim+kernelDim])
		}
	})
	s.SqrL2BatchNs = benchKernelN(kernelBatch, func() {
		vecmath.SquaredL2Batch(a, arena, kernelDim, idxs, outF)
	})
	s.SqrL2LoopNs = benchKernelN(kernelBatch, func() {
		for _, ix := range idxs {
			kernelSink = vecmath.SquaredL2(a, arena[int(ix)*kernelDim:int(ix)*kernelDim+kernelDim])
		}
	})
	s.Int8BatchNs = benchKernelN(kernelBatch, func() {
		vecmath.DotInt8Batch(a8, arena8, kernelDim, idxs, out8)
	})
	s.Int8LoopNs = benchKernelN(kernelBatch, func() {
		for _, ix := range idxs {
			kernelSinkInt8 = vecmath.DotInt8(a8, arena8[int(ix)*kernelDim:int(ix)*kernelDim+kernelDim])
		}
	})
	s.DotBatchSpeedup = s.DotLoopNs / s.DotBatchNs
	s.SqrL2BatchSpeedup = s.SqrL2LoopNs / s.SqrL2BatchNs
	s.Int8BatchSpeedup = s.Int8LoopNs / s.Int8BatchNs

	fmt.Printf("Float32 kernels at dim %d (%s tier vs scalar):\n", kernelDim, s.Tier)
	fmt.Printf("  dot        %6.1f ns vs %6.1f ns   %.2fx\n", s.DotNs, s.DotScalarNs, s.DotSpeedup)
	fmt.Printf("  squared-l2 %6.1f ns vs %6.1f ns   %.2fx\n", s.SqrL2Ns, s.SqrL2ScalarNs, s.SqrL2Speedup)
	fmt.Printf("  cosine     %6.1f ns vs %6.1f ns   %.2fx\n", s.CosineNs, s.CosineScalarNs, s.CosineSpeedup)
	fmt.Printf("Int8 dot at dim %d, per dispatch rung:\n", kernelDim)
	for _, tier := range []string{"scalar", "sse2", "avx2"} {
		if ns, ok := int8Ns[tier]; ok {
			fmt.Printf("  %-7s    %6.1f ns\n", tier, ns)
		}
	}
	fmt.Printf("  best (%s)  %.2fx vs scalar", s.Int8Tier, s.Int8Speedup)
	if s.Int8AVX2VsSSE2 > 0 {
		fmt.Printf(", avx2 %.2fx vs sse2", s.Int8AVX2VsSSE2)
	}
	fmt.Println()
	fmt.Printf("Batched kernels, %d candidates at dim %d (per-candidate, batch vs loop):\n", kernelBatch, kernelDim)
	fmt.Printf("  dot        %6.1f ns vs %6.1f ns   %.2fx\n", s.DotBatchNs, s.DotLoopNs, s.DotBatchSpeedup)
	fmt.Printf("  squared-l2 %6.1f ns vs %6.1f ns   %.2fx\n", s.SqrL2BatchNs, s.SqrL2LoopNs, s.SqrL2BatchSpeedup)
	fmt.Printf("  int8 dot   %6.1f ns vs %6.1f ns   %.2fx\n", s.Int8BatchNs, s.Int8LoopNs, s.Int8BatchSpeedup)
	return s
}

// runKernelsMode is the standalone -kernels entry: it refreshes only the
// cpu and kernels sections of the report, leaving every corpus-dependent
// section exactly as the last -ingest/-cold/-mixed run wrote it. With no
// existing report it writes a fresh shell holding just those sections.
func runKernelsMode(jsonPath string) {
	report := benchReport{GeneratedAt: nowStamp()}
	if jsonPath != "" {
		if prev, err := loadReport(jsonPath); err == nil {
			prev.GeneratedAt = report.GeneratedAt
			report = prev
		}
	}
	report.CPU = cpuSection()
	report.Kernels = runKernelSection()
	if jsonPath != "" {
		fail(writeReport(jsonPath, report))
		fmt.Printf("\nkernels section written to %s\n", jsonPath)
	}
}
