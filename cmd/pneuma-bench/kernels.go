package main

import (
	"fmt"
	"math/rand"
	"time"

	"pneuma/internal/vecmath"
)

// kernelDim is the vector length the kernel microbenchmark runs at. 384 is
// the reference dimensionality the SIMD work is specified against (a common
// sentence-embedding width, larger than the project default so the loop
// body dominates over call overhead); the end-to-end effect at the actual
// embedding width shows up in the query percentiles instead.
const kernelDim = 384

// cpuSection captures the vecmath dispatch state for the report.
func cpuSection() *cpuStats {
	return &cpuStats{
		Tier:         vecmath.Tier(),
		DetectedTier: vecmath.DetectedTier(),
		Features:     vecmath.Features(),
	}
}

// benchKernel returns f's per-call latency in nanoseconds: a warm-up pass
// then a timed loop long enough to amortize the clock reads.
func benchKernel(f func()) float64 {
	const iters = 200_000
	for i := 0; i < iters/10; i++ {
		f()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// kernelSink keeps the benchmarked kernel calls observable so the loops
// cannot be optimized away.
var kernelSink float32

// runKernelSection microbenchmarks the hot float32 distance kernels at
// kernelDim, dispatched tier versus forced scalar over identical operands,
// and prints the per-kernel speedups. The scalar pass runs under the
// ForceScalar override, restored before the function returns — callers
// must not run queries concurrently with this measurement.
func runKernelSection() *kernelStats {
	rng := rand.New(rand.NewSource(42))
	a := make([]float32, kernelDim)
	b := make([]float32, kernelDim)
	for i := range a {
		a[i] = rng.Float32() - 0.5
		b[i] = rng.Float32() - 0.5
	}
	na := vecmath.Norm(a)
	nb := vecmath.Norm(b)

	dot := func() { kernelSink = vecmath.Dot(a, b) }
	sql2 := func() { kernelSink = vecmath.SquaredL2(a, b) }
	cos := func() { kernelSink = vecmath.CosineWithNorms(a, b, na, nb) }

	s := &kernelStats{Dim: kernelDim, Tier: vecmath.Tier()}
	s.DotNs = benchKernel(dot)
	s.SqrL2Ns = benchKernel(sql2)
	s.CosineNs = benchKernel(cos)

	vecmath.ForceScalar(true)
	s.DotScalarNs = benchKernel(dot)
	s.SqrL2ScalarNs = benchKernel(sql2)
	s.CosineScalarNs = benchKernel(cos)
	vecmath.ForceScalar(false)

	s.DotSpeedup = s.DotScalarNs / s.DotNs
	s.SqrL2Speedup = s.SqrL2ScalarNs / s.SqrL2Ns
	s.CosineSpeedup = s.CosineScalarNs / s.CosineNs

	fmt.Printf("Float32 kernels at dim %d (%s tier vs scalar):\n", kernelDim, s.Tier)
	fmt.Printf("  dot        %6.1f ns vs %6.1f ns   %.2fx\n", s.DotNs, s.DotScalarNs, s.DotSpeedup)
	fmt.Printf("  squared-l2 %6.1f ns vs %6.1f ns   %.2fx\n", s.SqrL2Ns, s.SqrL2ScalarNs, s.SqrL2Speedup)
	fmt.Printf("  cosine     %6.1f ns vs %6.1f ns   %.2fx\n", s.CosineNs, s.CosineScalarNs, s.CosineSpeedup)
	return s
}
