package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"pneuma/internal/kramabench"
	"pneuma/internal/retriever"
)

// mixedConfig bundles the -mixed workload knobs.
type mixedConfig struct {
	tables     int
	shards     int
	workers    int
	backend    retriever.Backend
	indexDir   string
	readers    int
	ingestN    int
	ingestRate float64 // offered tables/sec for the stream; 0 = unpaced
	rounds     int
	think      time.Duration
	jsonPath   string
	baseline   string
}

// runMixedBench measures what live ingest costs the read path: reader
// goroutines run the canonical query mix against a pre-built index twice
// — once with the index quiescent (the read-only baseline) and once while
// an ingest stream concurrently adds fresh tables through the batched
// write path. The epoch/RCU claim under test: queries never block on the
// writers, so the p99 under ingest stays within a small factor of the
// read-only p99 instead of degrading by lock-convoy multiples. After the
// stream quiesces the run proves the determinism contract — the churned
// index must answer exactly like a fresh memory build over the final
// corpus — then writes a mixed_workload section into the -json report.
//
// Both sides of the workload are paced, which is what makes the
// comparison meaningful. The readers are a closed loop with think time
// (the YCSB convention), identical in both phases: each reader sleeps
// -think between queries, so the pool models N sessions at a realistic
// duty cycle instead of saturating every core with its own queries. The
// ingest stream is offered at a fixed -ingest-rate so the mixed phase is
// a steady state rather than a bulk load; an unpaced stream (-ingest-rate
// 0) measures "queries during a bulk import" instead, which on a small
// machine is dominated by the import's GC and run-queue pressure, not by
// anything the read path does. The knobs land in the JSON section so a
// report is comparable only against its own shape.
func runMixedBench(ctx context.Context, cfg mixedConfig) {
	if cfg.rounds < 1 {
		cfg.rounds = 1
	}
	if cfg.readers < 1 {
		cfg.readers = 4
	}
	if cfg.ingestN <= 0 {
		cfg.ingestN = cfg.tables / 4
		if cfg.ingestN < 1 {
			cfg.ingestN = 1
		}
	}
	if cfg.think < 0 {
		cfg.think = 0
	}
	n := cfg.tables
	corpus := kramabench.SyntheticSlice(n + cfg.ingestN)
	base, stream := corpus[:n], corpus[n:]

	opts := []retriever.Option{retriever.WithBackend(cfg.backend)}
	if cfg.shards > 0 {
		opts = append(opts, retriever.WithShards(cfg.shards))
	}
	if cfg.workers > 0 {
		opts = append(opts, retriever.WithWorkers(cfg.workers))
	}
	if cfg.indexDir != "" {
		opts = append(opts, retriever.WithDir(cfg.indexDir))
	}
	r, err := retriever.Open(opts...)
	fail(err)
	defer r.Close()
	if r.Len() > 0 {
		fmt.Fprintf(os.Stderr, "pneuma-bench: index dir %s already holds %d documents; point -index-dir at a fresh directory\n",
			r.Dir(), r.Len())
		os.Exit(2)
	}
	fail(r.IndexTables(ctx, base))

	queries := kramabench.RetrievalQueries()
	const k = 10
	fmt.Printf("Mixed workload benchmark: %d base tables + %d streamed (%s backend, %d shards, %d readers)\n\n",
		n, cfg.ingestN, cfg.backend, r.NumShards(), cfg.readers)

	// Warm up the scratch pools so both phases see steady state.
	for _, q := range queries {
		_, err := r.Search(ctx, q, k)
		fail(err)
	}

	// Phase 1, read-only baseline: the same reader pool as the mixed
	// phase (contention among readers is part of the baseline, only the
	// writer is absent), a fixed number of rounds each. The forced
	// collection keeps the bulk build's garbage from being collected in
	// the middle of the measurement window — each phase starts from a
	// clean heap and pays only for its own allocation.
	runtime.GC()
	readOnly := runReaders(r, queries, k, cfg.readers, cfg.think, func(stop func()) {
		stop() // no writer: readers run exactly their fixed rounds
	}, cfg.rounds)
	runtime.GC()

	// Phase 2, mixed: the ingest stream defines the measurement window —
	// readers hammer the index from the moment the stream starts until it
	// has fully landed, so every recorded latency raced a writer.
	const batch = 8
	var ingestDur time.Duration
	mixed := runReaders(r, queries, k, cfg.readers, cfg.think, func(stop func()) {
		defer stop()
		start := time.Now()
		for off := 0; off < cfg.ingestN; off += batch {
			end := off + batch
			if end > cfg.ingestN {
				end = cfg.ingestN
			}
			if cfg.ingestRate > 0 {
				// Offered-rate pacing: batch off/batch is due at its
				// schedule slot; sleep off any lead. A stream that falls
				// behind just runs flat out until it catches up.
				due := start.Add(time.Duration(float64(off) / cfg.ingestRate * float64(time.Second)))
				if lead := time.Until(due); lead > 0 {
					time.Sleep(lead)
				}
			}
			fail(r.IndexTables(ctx, stream[off:end]))
		}
		ingestDur = time.Since(start)
	}, 0)

	if got, want := r.Len(), n+cfg.ingestN; got != want {
		fmt.Fprintf(os.Stderr, "pneuma-bench: Len = %d after stream, want %d\n", got, want)
		os.Exit(1)
	}
	// Determinism at quiesce: the index that served under churn must
	// answer exactly like a fresh memory build over the final corpus.
	fresh := retriever.New(retriever.WithShards(r.NumShards()))
	defer fresh.Close()
	fail(fresh.IndexTables(ctx, corpus))
	churned := collect(ctx, r, queries, k)
	rebuilt := collect(ctx, fresh, queries, k)
	for qi, q := range queries {
		assertParity(q, "churned-vs-fresh", churned[qi], rebuilt[qi])
	}

	ingestRate := float64(cfg.ingestN) / ingestDur.Seconds()
	ratio := mixed.p99.Seconds() / readOnly.p99.Seconds()
	fmt.Printf("  read-only: p50 %v   p99 %v   (%d queries)\n",
		readOnly.p50.Round(time.Microsecond), readOnly.p99.Round(time.Microsecond), readOnly.count)
	fmt.Printf("  mixed:     p50 %v   p99 %v   (%d queries during ingest)\n",
		mixed.p50.Round(time.Microsecond), mixed.p99.Round(time.Microsecond), mixed.count)
	fmt.Printf("  ingest: %d tables in %v  (%.0f tables/sec)\n",
		cfg.ingestN, ingestDur.Round(time.Millisecond), ingestRate)
	fmt.Printf("  p99 under ingest / read-only p99: %.2fx\n", ratio)
	fmt.Printf("  parity: churned == fresh rebuild over %d queries ✓\n", len(queries))

	section := &mixedStats{
		Readers:            cfg.readers,
		ThinkMillis:        float64(cfg.think) / float64(time.Millisecond),
		IngestTables:       cfg.ingestN,
		IngestOfferedRate:  cfg.ingestRate,
		IngestTablesPerSec: ingestRate,
		ReadOnlyP50Micros:  float64(readOnly.p50) / float64(time.Microsecond),
		ReadOnlyP99Micros:  float64(readOnly.p99) / float64(time.Microsecond),
		MixedP50Micros:     float64(mixed.p50) / float64(time.Microsecond),
		MixedP99Micros:     float64(mixed.p99) / float64(time.Microsecond),
		P99Ratio:           ratio,
	}
	if cfg.baseline != "" {
		old, err := loadReport(cfg.baseline)
		fail(err)
		if old.Mixed != nil {
			fmt.Println()
			compareMixed(old.Mixed, section)
		}
	}
	if cfg.jsonPath != "" {
		// Merge: keep the sections the other modes recorded in the report.
		report, err := loadReport(cfg.jsonPath)
		if err != nil {
			report = benchReport{Corpus: n, Shards: r.NumShards(), Backend: string(cfg.backend)}
		}
		report.GeneratedAt = nowStamp()
		report.Mixed = section
		fail(writeReport(cfg.jsonPath, report))
		fmt.Printf("\nmixed_workload section written to %s\n", cfg.jsonPath)
	}
}

// latSummary is one phase's merged latency distribution.
type latSummary struct {
	count    int
	p50, p99 time.Duration
}

// runReaders runs nReaders goroutines over the query mix and returns the
// merged latency percentiles. The writer callback runs concurrently on
// the bench goroutine; readers stop when it calls stop (after at least
// one full round each). rounds > 0 additionally caps each reader at that
// many rounds — the read-only phase uses the cap, the mixed phase runs
// until the ingest stream quiesces. Each reader sleeps think between
// queries (closed loop with think time), so the offered load is the same
// in both phases and the recorded numbers are service latency, not
// queueing behind the pool's own saturation.
func runReaders(r *retriever.Retriever, queries []string, k, nReaders int, think time.Duration, writer func(stop func()), rounds int) latSummary {
	ctx := context.Background()
	done := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(done) }) }

	lats := make([][]time.Duration, nReaders)
	var wg sync.WaitGroup
	for g := 0; g < nReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, 4096)
			for round := 0; ; round++ {
				if rounds > 0 && round >= rounds {
					break
				}
				if round > 0 && rounds <= 0 {
					select {
					case <-done:
						lats[g] = mine
						return
					default:
					}
				}
				for _, q := range queries {
					qs := time.Now()
					if _, err := r.Search(ctx, q, k); err != nil {
						fail(err)
					}
					mine = append(mine, time.Since(qs))
					if think > 0 {
						time.Sleep(think)
					}
				}
			}
			lats[g] = mine
		}(g)
	}
	writer(stop)
	wg.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p := func(q float64) time.Duration { return all[int(q*float64(len(all)-1))] }
	return latSummary{count: len(all), p50: p(0.50), p99: p(0.99)}
}

// compareMixed prints the old-vs-new rows for the mixed_workload section.
func compareMixed(old, cur *mixedStats) {
	fmt.Printf("%-28s %12s %12s %9s\n", "metric", "old", "new", "delta")
	row := func(name string, o, n float64, higherIsBetter bool) {
		fmt.Printf("%-28s %12.1f %12.1f %9s\n", name, o, n, deltaPct(o, n, higherIsBetter))
	}
	row("mixed ingest (tables/sec)", old.IngestTablesPerSec, cur.IngestTablesPerSec, true)
	row("read-only p99 (µs)", old.ReadOnlyP99Micros, cur.ReadOnlyP99Micros, false)
	row("mixed p99 (µs)", old.MixedP99Micros, cur.MixedP99Micros, false)
	row("p99 ratio (mixed/ro)", old.P99Ratio, cur.P99Ratio, false)
}
