package pneuma_test

import (
	"context"
	"strings"
	"testing"

	"pneuma"
)

// TestPublicAPIQuickstart exercises the README's quickstart path through
// the public package only.
func TestPublicAPIQuickstart(t *testing.T) {
	corpus := pneuma.ArchaeologyDataset()
	seeker, err := pneuma.NewSeeker(pneuma.Config{}, corpus, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := seeker.NewSession("api-test")
	reply, err := sess.Send(context.Background(), "What is the average organic matter percentage for soil samples in the Malta region? Round your answer to 4 decimal places.")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Answer == "" {
		t.Fatalf("no answer; message: %s", reply.Message)
	}
	if !strings.Contains(sess.State.View(), "Q[0]") {
		t.Error("state view missing query")
	}
}

func TestPublicAPIEngine(t *testing.T) {
	corpus := pneuma.ArchaeologyDataset()
	eng := pneuma.NewEngine()
	for _, tb := range corpus {
		eng.Register(tb)
	}
	out, err := eng.Query("SELECT COUNT(*) AS n FROM excavation_sites WHERE region = 'Malta'")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Rows[0][0].IntVal() == 0 {
		t.Fatalf("count result: %v", out.Rows)
	}
}

func TestPublicAPIRetriever(t *testing.T) {
	ret := pneuma.NewRetriever()
	for _, tb := range pneuma.ArchaeologyDataset() {
		if err := ret.IndexTable(context.Background(), tb); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := ret.Search(context.Background(), "radiocarbon dating results", 2)
	if err != nil || len(hits) == 0 {
		t.Fatalf("search: %v %v", hits, err)
	}
	if hits[0].Title != "radiocarbon_dates" {
		t.Errorf("top = %q", hits[0].Title)
	}
}

func TestPublicAPIQuestionBanks(t *testing.T) {
	arch := pneuma.ArchaeologyDataset()
	if got := len(pneuma.ArchaeologyQuestions(arch)); got != 12 {
		t.Fatalf("arch questions = %d", got)
	}
	env := pneuma.EnvironmentDataset()
	if got := len(pneuma.EnvironmentQuestions(env)); got != 20 {
		t.Fatalf("env questions = %d", got)
	}
}

func TestPublicAPICSVRoundTrip(t *testing.T) {
	tb, err := pneuma.ReadCSV("t", strings.NewReader("a,b\n1,x\n2,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Fatalf("dims %dx%d", tb.NumRows(), tb.NumCols())
	}
}
